"""Nestable wall-clock spans with attached counter deltas.

The paper's analysis lives and dies on *attribution*: Sec III-C prices
DMA strip loads against register broadcasts against kernel flops, and
Fig. 6 explains each variant's gain by where its time went.  The
runtime counters (:class:`~repro.arch.dma.DMAStats` and friends) say
*how much* moved in total; a :class:`SpanTracer` says *when* and *under
which phase*:

    tracer = SpanTracer()
    with Session(tracer=tracer) as s:
        s.batch(items)
    chrome_trace(tracer.spans, "trace.json")     # load in Perfetto

Every entry point takes ``tracer=None`` and defaults to
:data:`NULL_TRACER`, whose ``span()`` hands back one shared no-op
context manager — tracing off costs two dictionary-free function calls
per span site, which keeps the untraced hot path within its <=2%
overhead budget (enforced relative to ``bench_engine --smoke``).

A span records its wall time via :func:`time.perf_counter` and, when
given a ``meter`` (a zero-argument callable returning a flat
``{counter_name: number}`` dict, see :mod:`repro.obs.registry`), the
counter *deltas* across its body.  Spans nest: the tracer keeps one
open-span stack *per thread*, so exporters can reconstruct the tree
(``session.batch`` → ``cg_dispatch`` → ``dgemm`` →
``stage_A``/``stage_B``/``strip_mult``/``store_C``) even when the
scheduler dispatches core groups on worker threads.

Thread model
------------

The closed-span list and the span index counter are shared (guarded by
one lock, so ``index`` stays a global opening order), while the
open-span stack is thread-local: spans opened on different threads
never see each other as parents.  A worker thread's first span would
therefore be a root — unless the code that hands work to the thread
captures the spawning thread's current span (:meth:`SpanTracer.current`)
and passes it as ``parent=`` when opening spans on the worker, which is
exactly what the parallel scheduler does so every ``cg_dispatch``
subtree stays attached to its ``session.batch``.  Track inheritance
follows the same rule, so CG-pinned subtrees still render one row per
core group in the Chrome trace.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass, field
from time import perf_counter
from types import TracebackType

#: a span meter: zero-argument callable returning flat numeric counters.
Meter = Callable[[], dict]

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SpanTracer",
    "TraceSpan",
    "ensure_tracer",
]


@dataclass(frozen=True)
class TraceSpan:
    """One closed span: a named interval with attributes and deltas."""

    #: phase name, e.g. ``"dgemm"`` or ``"stage_A"``.
    name: str
    #: coarse category for trace viewers (``"session"``, ``"stage"``, ...).
    cat: str
    #: start/end on the tracer's clock (:func:`time.perf_counter` seconds).
    start: float
    end: float
    #: position in the span tree.
    index: int
    parent: int | None
    depth: int
    #: trace track (Chrome ``tid``); CG-bound spans use the CG index.
    track: int
    #: free-form labels attached at the call site (shape, variant, ...).
    attrs: dict = field(default_factory=dict)
    #: metered counter deltas over the span body (empty without a meter).
    counters: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class _NullSpan:
    """The shared do-nothing context manager of :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every ``span()`` is the same no-op.

    Stateless and safe to share — :data:`NULL_TRACER` is the module
    singleton every ``tracer=None`` entry point resolves to.
    """

    enabled = False

    def span(
        self,
        name: str,
        cat: str = "span",
        meter: Meter | None = None,
        track: int | None = None,
        parent: "object | None" = None,
        **attrs: object,
    ) -> "_NullSpan":
        return _NULL_SPAN

    def current(self) -> None:
        """No open spans on the no-op tracer, on any thread."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullTracer()"


NULL_TRACER = NullTracer()


def ensure_tracer(tracer: SpanTracer | NullTracer | None) -> SpanTracer | NullTracer:
    """Resolve a ``tracer=`` keyword: ``None`` means tracing off."""
    return NULL_TRACER if tracer is None else tracer


class _OpenSpan:
    """Context manager recording one span into its tracer on exit."""

    __slots__ = (
        "tracer",
        "name",
        "cat",
        "meter",
        "track",
        "attrs",
        "explicit_parent",
        "index",
        "parent",
        "depth",
        "start",
        "before",
    )

    index: int
    parent: int | None
    depth: int
    start: float
    before: dict | None

    def __init__(
        self,
        tracer: "SpanTracer",
        name: str,
        cat: str,
        meter: Meter | None,
        track: int | None,
        parent: "_OpenSpan | None",
        attrs: dict,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.meter = meter
        self.track = track
        self.explicit_parent = parent
        self.attrs = attrs

    def __enter__(self) -> "_OpenSpan":
        tracer = self.tracer
        stack = tracer._thread_stack()
        # this thread's enclosing span wins; ``parent=`` only adopts a
        # cross-thread parent when the local stack is empty (a worker
        # thread's first span).
        top = stack[-1] if stack else self.explicit_parent
        if top is not None:
            self.parent = top.index
            self.depth = top.depth + 1
            if self.track is None:
                self.track = top.track
        else:
            self.parent = None
            self.depth = 0
            if self.track is None:
                self.track = 0
        # read the meter *before* pushing onto the stack: a meter that
        # raises here must not leave a phantom open span behind to
        # mis-parent every later span on this thread.
        self.before = self.meter() if self.meter is not None else None
        with tracer._lock:
            self.index = tracer._next_index
            tracer._next_index += 1
        stack.append(self)
        self.start = perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        end = perf_counter()
        tracer = self.tracer
        counters: dict = {}
        try:
            before = self.before
            if self.meter is not None and before is not None:
                after = self.meter()
                # union of keys: a counter present before but dropped
                # from the after-snapshot still contributes its final
                # delta (as 0 - before would lose it entirely).
                keys = list(after) + [k for k in before if k not in after]
                counters = {k: after.get(k, 0) - before.get(k, 0) for k in keys}
        finally:
            # the stack pop and the span record are unconditional: a
            # meter raising on exit must not leave the span open.
            stack = tracer._thread_stack()
            top = stack.pop() if stack else None
            if top is not self:  # pragma: no cover - defensive
                raise RuntimeError(
                    f"span {self.name!r} closed out of order "
                    f"(found {top.name if top else None!r})"
                )
            attrs = self.attrs
            if exc_type is not None:
                # mark spans closed by an in-flight exception so the
                # trace shows *where* a run aborted.
                attrs = dict(attrs)
                attrs["error"] = getattr(exc_type, "__name__", str(exc_type))
            record = TraceSpan(
                name=self.name,
                cat=self.cat,
                start=self.start,
                end=end,
                index=self.index,
                parent=self.parent,
                depth=self.depth,
                track=self.track or 0,
                attrs=attrs,
                counters=counters,
            )
            with tracer._lock:
                tracer.spans.append(record)
        return False


class SpanTracer:
    """Collects :class:`TraceSpan` records from nested ``span()`` scopes.

    Spans are appended in *closing* order (children before parents);
    ``index`` restores opening order and ``parent`` the tree.  The
    tracer is thread-aware: each thread nests spans on its own
    open-span stack (strictly nested per thread — closing out of order
    raises), while the closed-span list and the index counter are
    shared under one lock so the merged record is a single, globally
    ordered span list.  Cross-thread subtrees attach via the
    ``parent=`` keyword (see the module docstring).
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: list[TraceSpan] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_index = 0
        # counter_totals() memo: phase name -> (spans consumed, totals).
        # The span list is append-only, so totals accumulate
        # incrementally instead of rescanning history — a continuous
        # sampler polls totals every few milliseconds for the lifetime
        # of a server, and a full rescan would grow without bound.
        self._totals_cache: dict[str | None, tuple[int, dict]] = {}

    def _thread_stack(self) -> list[_OpenSpan]:
        stack: list[_OpenSpan] | None = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> _OpenSpan | None:
        """This thread's innermost open span (``None`` outside any span).

        Capture it before handing work to another thread and pass it as
        ``span(..., parent=...)`` there, so the worker's spans join this
        thread's subtree instead of becoming orphan roots.
        """
        stack = self._thread_stack()
        return stack[-1] if stack else None

    def span(
        self,
        name: str,
        cat: str = "span",
        meter: Meter | None = None,
        track: int | None = None,
        parent: _OpenSpan | None = None,
        **attrs: object,
    ) -> _OpenSpan:
        """Open a nested span; use as ``with tracer.span("dgemm"): ...``.

        ``meter`` is a zero-argument callable returning a flat numeric
        dict; the span stores ``after - before`` per counter.  ``track``
        pins the span to a Chrome-trace track (defaults to the parent's
        track, or 0 at the root).  ``parent`` adopts an open span from
        another thread as this span's parent when this thread's own
        stack is empty; it is ignored inside an enclosing span.
        """
        return _OpenSpan(self, name, cat, meter, track, parent, attrs)

    # -- aggregate views ----------------------------------------------

    def by_name(self, name: str) -> list[TraceSpan]:
        """All closed spans with this phase name, in closing order."""
        return [s for s in self.spans if s.name == name]

    def total_seconds(self, name: str) -> float:
        """Summed duration of a phase (overlapping nesting counts twice)."""
        return sum(s.duration for s in self.spans if s.name == name)

    def counter_totals(self, name: str | None = None) -> dict:
        """Sum of counter deltas over spans (optionally one phase only).

        Summing one tree level (e.g. every ``dgemm`` span) reconciles
        exactly with the cumulative runtime counters — the property the
        trace tests assert against ``Session.stats()``.
        """
        with self._lock:
            n = len(self.spans)
            seen, totals = self._totals_cache.get(name, (0, {}))
            if seen < n:
                totals = dict(totals)
                for span in self.spans[seen:n]:
                    if name is not None and span.name != name:
                        continue
                    for key, value in span.counters.items():
                        totals[key] = totals.get(key, 0) + value
                self._totals_cache[name] = (n, totals)
        return dict(totals)

    def roots(self) -> list[TraceSpan]:
        """Top-level spans in opening order."""
        return sorted(
            (s for s in self.spans if s.parent is None),
            key=lambda s: s.index,
        )

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        open_spans = len(self._thread_stack())
        return f"SpanTracer({len(self.spans)} spans, {open_spans} open)"
