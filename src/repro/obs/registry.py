"""One namespaced snapshot over the package's scattered counters.

Seven ``*Stats`` objects count different layers of the machine — DMA,
register communication, software cache, host staging, NoC, context
traffic, session totals.  They share the
:class:`~repro.utils.stats.StatsProtocol` arithmetic; this module gives
them one *address space*: flat, dot-namespaced counter names such as

- ``dma.pe_mode.bytes`` / ``dma.row_mode.bytes`` (per-mode traffic),
- ``regcomm.row_broadcasts``, ``regcomm.bytes_moved``,
- ``memory.allocations``, ``cache.hits``, ``noc.messages``,
- ``ctx.dma_bytes`` (per-context deltas), ``session.flops``.

:class:`MetricsRegistry` binds namespaces to live sources and produces
one merged snapshot dict; ``delta`` subtracts two snapshots.  The
``*_meter`` helpers build the zero-argument callables
:meth:`repro.obs.tracer.SpanTracer.span` attaches to spans.
"""

from __future__ import annotations

import numbers
from collections.abc import Callable
from typing import Any

from repro.utils.stats import StatsProtocol

__all__ = [
    "MetricsRegistry",
    "cg_meter",
    "combine_meters",
    "context_meter",
    "flatten",
    "plan_cache_meter",
    "processor_meter",
    "resil_meter",
    "session_meter",
    "snapshot_core_group",
]


#: memoized ``(prefix, key) -> flattened name`` strings.  The counter
#: name space is small and fixed per process, and a continuous sampler
#: flattens the same names hundreds of times a second — interning them
#: keeps per-sample cost to dict lookups instead of string building.
_NAMES: dict[tuple[str, str], str] = {}


def _flat_name(prefix: str, key: object) -> str:
    raw = key if isinstance(key, str) else str(key)
    name = _NAMES.get((prefix, raw))
    if name is None:
        lowered = raw.lower()
        name = f"{prefix}.{lowered}" if prefix else lowered
        _NAMES[(prefix, raw)] = name
    return name


def flatten(prefix: str, data: dict) -> dict:
    """Flatten a (possibly nested) dict into ``prefix.key`` counters.

    Nested dicts recurse with lowercased path components; non-numeric
    leaves are dropped (a snapshot is strictly numeric so deltas are
    always well-defined).
    """
    out: dict = {}
    for key, value in data.items():
        name = _flat_name(prefix, key)
        # exact-type fast path first: int/float leaves dominate every
        # snapshot and ``numbers.Number`` is an abc-machinery check.
        vt = type(value)
        if vt is int or vt is float:
            out[name] = value
        elif vt is dict or isinstance(value, dict):
            out.update(flatten(name, value))
        elif isinstance(value, numbers.Number) and not isinstance(value, bool):
            out[name] = value
    return out


def _as_mapping(stats: object) -> dict:
    # dict first: most registry sources are callables returning plain
    # dicts, and the StatsProtocol check walks the abc registry.
    if type(stats) is dict or isinstance(stats, dict):
        return stats
    if isinstance(stats, StatsProtocol):
        return stats.as_dict()
    raise TypeError(
        "metrics source must be a StatsProtocol or dict, got "
        f"{type(stats).__name__}"
    )


def _dma_dict(stats: Any) -> dict:
    """DMAStats with ``by_mode`` spelled as ``<mode>.bytes`` counters."""
    data = stats.as_dict()
    for mode, nbytes in data.pop("by_mode").items():
        data[f"{str(mode).lower()}.bytes"] = nbytes
    return data


class MetricsRegistry:
    """Named, namespaced counter sources with a merged snapshot/delta API.

    A *source* is either a live :class:`StatsProtocol` object (or plain
    dict) or a zero-argument callable returning one; callables are
    re-evaluated per snapshot, so sources that are rebuilt per call
    (``Session.stats()``) stay current.  An optional *adapter* reshapes
    the raw dict before flattening (used for ``DMAStats.by_mode``).
    """

    def __init__(self) -> None:
        self._sources: dict = {}

    def register(
        self,
        namespace: str,
        source: Any,
        adapter: Callable[[Any], dict] | None = None,
    ) -> "MetricsRegistry":
        """Bind ``namespace`` to a source; returns self for chaining."""
        namespace = str(namespace)
        if namespace in self._sources:
            raise ValueError(f"namespace {namespace!r} is already registered")
        self._sources[namespace] = (source, adapter)
        return self

    @property
    def namespaces(self) -> tuple[str, ...]:
        return tuple(self._sources)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Adopt every source of ``other`` (namespace collisions raise)."""
        for namespace, (source, adapter) in other._sources.items():
            self.register(namespace, source, adapter)
        return self

    def snapshot(self) -> dict:
        """One flat ``{namespaced_counter: number}`` view of every source."""
        merged: dict = {}
        for namespace, (source, adapter) in self._sources.items():
            stats = source() if callable(source) else source
            data = adapter(stats) if adapter is not None else _as_mapping(stats)
            merged.update(flatten(namespace, data))
        return merged

    @staticmethod
    def delta(after: dict, before: dict) -> dict:
        """Counter deltas between two snapshots (missing keys count 0)."""
        keys = set(after) | set(before)
        return {k: after.get(k, 0) - before.get(k, 0) for k in keys}

    def meter(self) -> Callable[[], dict]:
        """This registry as a span meter (see :meth:`SpanTracer.span`)."""
        return self.snapshot

    # -- canonical bindings -------------------------------------------

    @classmethod
    def for_core_group(cls, cg: Any, prefix: str = "") -> "MetricsRegistry":
        """DMA + register-communication + staging counters of one CG."""
        dot = f"{prefix}." if prefix else ""
        registry = cls()
        registry.register(f"{dot}dma", cg.dma.stats, adapter=_dma_dict)
        registry.register(f"{dot}regcomm", cg.regcomm.stats)
        registry.register(f"{dot}memory", cg.memory.stats)
        return registry

    @classmethod
    def for_processor(cls, processor: Any) -> "MetricsRegistry":
        """Every CG's counters (``cg0.dma...``) plus the NoC's."""
        registry = cls()
        for index, cg in enumerate(processor.core_groups):
            sub = cls.for_core_group(cg, prefix=f"cg{index}")
            for namespace, (source, adapter) in sub._sources.items():
                registry.register(namespace, source, adapter)
        registry.register("noc", processor.noc.stats)
        return registry

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricsRegistry({', '.join(self._sources) or 'empty'})"


def snapshot_core_group(cg: Any) -> dict:
    """Flat ``dma.* / regcomm.* / memory.*`` snapshot of one core group."""
    out = flatten("dma", _dma_dict(cg.dma.stats))
    out.update(flatten("regcomm", cg.regcomm.stats.as_dict()))
    out.update(flatten("memory", cg.memory.stats.as_dict()))
    return out


def cg_meter(cg: Any) -> Callable[[], dict]:
    """Span meter over one core group's device counters."""
    return lambda: snapshot_core_group(cg)


def context_meter(ctx: Any) -> Callable[[], dict]:
    """Span meter over one execution context's traffic deltas.

    Metered per span, the difference of two ``ctx.stats()`` reads is
    the span's exact :class:`~repro.core.context.ContextStats` — summing
    every ``dgemm`` span therefore reconciles bit-exactly with
    ``Session.stats().traffic``.
    """
    return lambda: flatten("ctx", ctx.stats().as_dict())


def processor_meter(processor: Any) -> Callable[[], dict]:
    """Span meter over a whole chip (all four CGs plus the NoC)."""
    return MetricsRegistry.for_processor(processor).meter()


def session_meter(session: Any) -> Callable[[], dict]:
    """Span meter over a session's cumulative accounting."""
    return lambda: flatten("session", session.stats().as_dict())


def plan_cache_meter(cache: Any) -> Callable[[], dict]:
    """Span meter over a plan cache's counters (``plan.cache.*``).

    Attached to ``dgemm`` spans alongside the context meter, so a
    span's delta shows whether the call hit a warm plan
    (``plan.cache.hits`` +1) or compiled one (``plan.cache.builds``
    +1, with the build time under its own ``plan.build`` span).
    ``cache.stats()`` reads are lock-held snapshots, safe under
    parallel CG workers.
    """
    return lambda: flatten("plan.cache", cache.stats().as_dict())


def combine_meters(*meters: Callable[[], dict]) -> Callable[[], dict]:
    """Merge several span meters into one (later meters win on collisions)."""

    def merged() -> dict:
        out: dict = {}
        for meter in meters:
            out.update(meter())
        return out

    return merged


def resil_meter(scheduler: Any) -> Callable[[], dict]:
    """Span meter over a scheduler's resilience counters (``resil.*``).

    Covers recovery-ladder counts (``resil.recovered``,
    ``resil.retries``, ``resil.quarantines``, ...) and, when an
    injector is attached, its injection totals
    (``resil.injection.injected``, ``resil.injection.by_site.*``).

    ``resil_stats`` reads are lock-held snapshots, so this meter is
    safe to sample while a parallel run's workers bump the counters.
    The per-context and per-device meters need no locks: each is read
    only inside spans on the one thread that owns that CG.
    """
    return lambda: flatten("resil", scheduler.resil_stats())
