"""Observability: span tracing, a metrics registry, and trace export.

The runtime's counters (seven ``*Stats`` dataclasses sharing the
:class:`~repro.utils.stats.StatsProtocol`) report end states; this
subsystem adds *attribution* — which phase of which call moved those
bytes, and when:

- :mod:`repro.obs.tracer` — nestable wall-clock spans with attached
  counter deltas (:class:`SpanTracer`; :data:`NULL_TRACER` is the
  default no-op every ``tracer=`` keyword resolves to);
- :mod:`repro.obs.registry` — one namespaced snapshot/delta view over
  the scattered stats objects (``dma.pe_mode.bytes``,
  ``regcomm.row_broadcasts``, ...) plus the span-meter helpers;
- :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto), JSONL,
  and per-phase text reports including model-vs-measured diffs.

Spans are emitted by ``Session``/``dgemm``/``dgemm_batch``, both
execution engines and ``CGScheduler`` whenever a real tracer is passed;
``tools/check_trace.py`` validates exported traces in CI.
"""

from repro.obs.export import (
    chrome_trace,
    jsonl_lines,
    model_gap_report,
    phase_report,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.registry import (
    MetricsRegistry,
    cg_meter,
    context_meter,
    flatten,
    processor_meter,
    resil_meter,
    session_meter,
    snapshot_core_group,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    SpanTracer,
    TraceSpan,
    ensure_tracer,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SpanTracer",
    "TraceSpan",
    "ensure_tracer",
    "MetricsRegistry",
    "cg_meter",
    "context_meter",
    "flatten",
    "processor_meter",
    "resil_meter",
    "session_meter",
    "snapshot_core_group",
    "chrome_trace",
    "jsonl_lines",
    "model_gap_report",
    "phase_report",
    "write_chrome_trace",
    "write_jsonl",
]
