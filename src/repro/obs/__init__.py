"""Observability: tracing, metrics, continuous telemetry, and alerts.

The runtime's counters (seven ``*Stats`` dataclasses sharing the
:class:`~repro.utils.stats.StatsProtocol`) report end states; this
subsystem adds *attribution* — which phase of which call moved those
bytes, and when — plus the always-on pipeline an operating serving
tier needs:

- :mod:`repro.obs.tracer` — nestable wall-clock spans with attached
  counter deltas (:class:`SpanTracer`; :data:`NULL_TRACER` is the
  default no-op every ``tracer=`` keyword resolves to);
- :mod:`repro.obs.registry` — one namespaced snapshot/delta view over
  the scattered stats objects (``dma.pe_mode.bytes``,
  ``regcomm.row_broadcasts``, ...) plus the span-meter helpers;
- :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto), JSONL,
  and per-phase text reports including model-vs-measured diffs;
- :mod:`repro.obs.series` — :class:`MetricsSampler`, a background
  thread turning registry snapshots into ring-buffer
  :class:`TimeSeries` with window deltas and rates;
- :mod:`repro.obs.histogram` — :class:`LatencyHistogram`, bounded
  log-bucketed distributions (latency, Gflop/s, DMA bytes);
- :mod:`repro.obs.promexp` — Prometheus/OpenMetrics text exposition
  of snapshots and histogram families;
- :mod:`repro.obs.events` — :class:`EventLog`, a leveled structured
  event ring with JSONL export;
- :mod:`repro.obs.alerts` — :class:`AlertEngine` rules (SLO burn
  rate, eviction storms, quarantines) over sampled series;
- :mod:`repro.obs.dashboard` — the ``repro-dgemm top`` terminal
  dashboard renderer.

Spans are emitted by ``Session``/``dgemm``/``dgemm_batch``, both
execution engines and ``CGScheduler`` whenever a real tracer is passed;
``tools/check_trace.py`` validates exported traces and
``tools/check_metrics.py`` validates OpenMetrics scrapes in CI.
"""

from repro.obs.alerts import (
    Alert,
    AlertEngine,
    AlertRule,
    BurnRateRule,
    RateThresholdRule,
    default_serve_rules,
)
from repro.obs.dashboard import render_dashboard, sparkline
from repro.obs.events import Event, EventLog
from repro.obs.export import (
    chrome_trace,
    jsonl_lines,
    model_gap_report,
    phase_report,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.histogram import LatencyHistogram
from repro.obs.promexp import (
    HistogramFamily,
    format_value,
    is_counter_name,
    metric_name,
    render_openmetrics,
)
from repro.obs.registry import (
    MetricsRegistry,
    cg_meter,
    context_meter,
    flatten,
    processor_meter,
    resil_meter,
    session_meter,
    snapshot_core_group,
)
from repro.obs.series import MetricsSampler, TimeSeries
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    SpanTracer,
    TraceSpan,
    ensure_tracer,
)

__all__ = [
    "NULL_TRACER",
    "Alert",
    "AlertEngine",
    "AlertRule",
    "BurnRateRule",
    "Event",
    "EventLog",
    "HistogramFamily",
    "LatencyHistogram",
    "MetricsRegistry",
    "MetricsSampler",
    "NullTracer",
    "RateThresholdRule",
    "SpanTracer",
    "TimeSeries",
    "TraceSpan",
    "cg_meter",
    "chrome_trace",
    "context_meter",
    "default_serve_rules",
    "ensure_tracer",
    "flatten",
    "format_value",
    "is_counter_name",
    "jsonl_lines",
    "metric_name",
    "model_gap_report",
    "phase_report",
    "processor_meter",
    "render_dashboard",
    "render_openmetrics",
    "resil_meter",
    "session_meter",
    "snapshot_core_group",
    "sparkline",
    "write_chrome_trace",
    "write_jsonl",
]
