"""Text dashboard frames over a live sampler: the ``top`` view.

Renders one self-contained text frame — throughput, per-CG DMA
utilization bars, cache hit rates, SLO table, active alerts, recent
events — from a :class:`~repro.obs.series.MetricsSampler` plus the
optional serving-tier sources.  The CLI's ``repro-dgemm top`` clears
the terminal and reprints a frame per refresh; tests render one frame
and assert on its text, so everything here is pure string building
with no terminal control beyond what the caller adds.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.alerts import AlertEngine
from repro.obs.events import EventLog
from repro.obs.series import MetricsSampler

__all__ = ["render_dashboard", "sparkline"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: list[float], width: int = 32) -> str:
    """A unicode block sparkline of the last ``width`` values."""
    if not values:
        return ""
    tail = values[-width:]
    top = max(tail)
    if top <= 0:
        return _BLOCKS[0] * len(tail)
    scale = len(_BLOCKS) - 1
    return "".join(
        _BLOCKS[min(scale, round(v / top * scale))] for v in tail
    )


def _fmt_rate(value: float) -> str:
    if value >= 1e9:
        return f"{value / 1e9:.2f}G"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.2f}k"
    return f"{value:.1f}"


def _bar(fraction: float, width: int) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def _hit_rate(hits: float, misses: float) -> str:
    total = hits + misses
    if total <= 0:
        return "  -- "
    return f"{100.0 * hits / total:4.1f}%"


def render_dashboard(
    sampler: MetricsSampler,
    *,
    slo_table: str | None = None,
    alerts: AlertEngine | None = None,
    events: EventLog | None = None,
    window_seconds: float = 2.0,
    width: int = 78,
    title: str = "repro top",
    clock: Callable[[], float] | None = None,
) -> str:
    """One dashboard frame as plain text.

    Reads only the sampler's retained series (latest values and
    trailing-window rates), so a frame is safe to render from any
    thread while sampling continues.
    """
    latest = sampler.latest()
    now = (clock or sampler.clock)()
    uptime = now - (sampler.started_at or now)

    def value(name: str) -> float:
        return latest.get(name, 0.0)

    lines = [
        f"{title} — up {uptime:7.1f}s   samples {sampler.samples}   "
        f"series {len(latest)}   period "
        f"{sampler.period_seconds * 1e3:.0f} ms",
        "=" * width,
    ]

    # -- serving throughput -------------------------------------------
    if any(name.startswith("serve.") for name in latest):
        req_rate = sampler.rate("serve.completed", window_seconds)
        lines.append(
            f"requests  {_fmt_rate(req_rate)}/s   "
            f"admitted {value('serve.admitted'):.0f}   "
            f"completed {value('serve.completed'):.0f}   "
            f"failed {value('serve.failed'):.0f}   "
            f"rejected {value('serve.rejected'):.0f}   "
            f"inflight {value('serve.inflight'):.0f}"
        )
        lines.append(
            f"batches   {value('serve.batches'):.0f} dispatched, "
            f"{value('serve.batched_requests'):.0f} riders   "
            f"operand cache "
            f"{_hit_rate(value('serve.cache.hits'), value('serve.cache.misses'))}"
            f" hit ({value('serve.cache.evictions'):.0f} evictions)   "
            f"plan cache "
            f"{_hit_rate(value('plan.cache.hits'), value('plan.cache.misses'))}"
            " hit"
        )
        series = sampler.series("serve.completed")
        if series is not None and len(series) > 1:
            deltas = [
                max(0.0, b[1] - a[1])
                for a, b in zip(series.points(), series.points()[1:])
            ]
            lines.append(f"completed {sparkline(deltas, width - 12)}")

    # -- per-CG utilization (DMA byte rate as the activity proxy) -----
    cg_rates = []
    index = 0
    while f"cg{index}.dma.transactions" in latest:
        cg_rates.append(
            sampler.rate(f"cg{index}.dma.bytes_get", window_seconds)
            + sampler.rate(f"cg{index}.dma.bytes_put", window_seconds)
        )
        index += 1
    if cg_rates:
        peak = max(cg_rates)
        lines.append("-" * width)
        for cg, rate in enumerate(cg_rates):
            fraction = rate / peak if peak > 0 else 0.0
            lines.append(
                f"CG{cg}  {_bar(fraction, width - 24)}  "
                f"{_fmt_rate(rate)}B/s DMA"
            )

    # -- session accounting -------------------------------------------
    if any(name.startswith("session.") for name in latest):
        lines.append("-" * width)
        lines.append(
            f"session   items {value('session.items'):.0f}   "
            f"failures {value('session.failures'):.0f}   "
            f"flops {_fmt_rate(value('session.flops'))}   "
            f"dma {_fmt_rate(value('session.traffic.dma_bytes'))}B   "
            f"regcomm {_fmt_rate(value('session.traffic.regcomm_bytes'))}B"
        )

    # -- SLOs ---------------------------------------------------------
    if slo_table:
        lines.append("-" * width)
        lines.extend(slo_table.splitlines())

    # -- alerts -------------------------------------------------------
    lines.append("-" * width)
    active = alerts.active() if alerts is not None else ()
    if active:
        for alert in active:
            lines.append(
                f"ALERT [{alert.severity}] {alert.rule}: {alert.message}"
            )
    else:
        lines.append("alerts: none firing")

    # -- recent events ------------------------------------------------
    if events is not None:
        for event in events.tail(3):
            detail: dict[str, Any] = dict(event.fields)
            summary = ", ".join(
                f"{k}={v}" for k, v in list(detail.items())[:3]
            )
            lines.append(
                f"event [{event.level}] {event.kind}"
                + (f" ({summary})" if summary else "")
            )

    return "\n".join(lines)
