"""Trace exporters: Chrome trace-event JSON, JSONL, and text reports.

Three consumers, three formats:

- :func:`chrome_trace` — the Trace Event Format (``ph: "X"`` complete
  events, microsecond timestamps) that chrome://tracing and Perfetto
  load directly; span attributes and counter deltas ride in ``args``;
- :func:`jsonl_lines` / :func:`write_jsonl` — one JSON object per span,
  for ad-hoc ``jq``/pandas analysis;
- :func:`phase_report` — a per-phase text table (time, DMA/regcomm
  traffic, flops, arithmetic intensity) and :func:`model_gap_report`,
  which diffs measured phase times against a *modeled* timeline (e.g.
  :mod:`repro.perf.timeline`'s device-time predictions) so
  model-vs-measured gaps are a printed column, not a guess.

All exporters take a sequence of closed
:class:`~repro.obs.tracer.TraceSpan` records (``tracer.spans``).
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

from repro.obs.tracer import TraceSpan
from repro.utils.format import Table

__all__ = [
    "chrome_trace",
    "jsonl_lines",
    "model_gap_report",
    "phase_report",
    "write_chrome_trace",
    "write_jsonl",
]

#: Chrome trace ``pid`` — one simulated process.
TRACE_PID = 1


def _time_origin(spans: Sequence[TraceSpan]) -> float:
    return min((s.start for s in spans), default=0.0)


def chrome_trace(spans: Sequence[TraceSpan], *, label: str = "repro") -> dict:
    """Spans as a Trace Event Format payload (Perfetto-loadable).

    Every span becomes a complete (``"X"``) event: ``ts``/``dur`` in
    microseconds from the earliest span, ``tid`` from the span's track
    (CG-bound spans carry their CG index, so each core group renders as
    its own row), counter deltas under ``args.counters``.
    """
    t0 = _time_origin(spans)
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": label},
        }
    ]
    tracks = sorted({s.track for s in spans})
    for track in tracks:
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": TRACE_PID,
                "tid": track,
                "args": {"name": "host" if track == 0 else f"CG{track - 1}"},
            }
        )
    for span in sorted(spans, key=lambda s: s.index):
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": (span.start - t0) * 1e6,
                "dur": span.duration * 1e6,
                "pid": TRACE_PID,
                "tid": span.track,
                "args": {
                    **{str(k): v for k, v in span.attrs.items()},
                    "counters": dict(span.counters),
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    spans: Sequence[TraceSpan], path: str | os.PathLike[str], *, label: str = "repro"
) -> None:
    """Serialize :func:`chrome_trace` to ``path``."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(spans, label=label), fh, indent=1)
        fh.write("\n")


def jsonl_lines(spans: Sequence[TraceSpan]) -> Iterable[str]:
    """One compact JSON object per span, in opening order."""
    t0 = _time_origin(spans)
    for span in sorted(spans, key=lambda s: s.index):
        yield json.dumps(
            {
                "name": span.name,
                "cat": span.cat,
                "start_us": (span.start - t0) * 1e6,
                "dur_us": span.duration * 1e6,
                "index": span.index,
                "parent": span.parent,
                "depth": span.depth,
                "track": span.track,
                "attrs": dict(span.attrs),
                "counters": dict(span.counters),
            },
            sort_keys=True,
        )


def write_jsonl(spans: Sequence[TraceSpan], path: str | os.PathLike[str]) -> None:
    with open(path, "w") as fh:
        for line in jsonl_lines(spans):
            fh.write(line + "\n")


# -- text reports -----------------------------------------------------


def _span_dma_bytes(span: TraceSpan) -> int:
    c = span.counters
    return int(
        c.get("ctx.dma_bytes", 0)
        + c.get("dma.bytes_get", 0)
        + c.get("dma.bytes_put", 0)
    )


def _span_regcomm_bytes(span: TraceSpan) -> int:
    c = span.counters
    return int(c.get("ctx.regcomm_bytes", 0) + c.get("regcomm.bytes_moved", 0))


def _span_flops(span: TraceSpan) -> int:
    return int(span.attrs.get("flops", 0))


def phase_report(spans: Sequence[TraceSpan], *, title: str | None = None) -> str:
    """Per-phase table: count, time, traffic, arithmetic intensity.

    Phases are span names; the traffic columns read each phase's own
    counter deltas (DMA bytes from either a context or a core-group
    meter), and ``flop/B`` is the measured arithmetic intensity — the
    quantity the paper's Sec III-C bandwidth model prices phases by.
    Nested phases each report their own row, so child times are *not*
    subtracted from parents (``dgemm`` contains its stages).
    """
    if not spans:
        return "(no spans recorded)"
    t0 = _time_origin(spans)
    wall = max(s.end for s in spans) - t0
    order: list[str] = []
    grouped: dict[str, list[TraceSpan]] = {}
    for span in sorted(spans, key=lambda s: s.index):
        grouped.setdefault(span.name, []).append(span)
        if span.name not in order:
            order.append(span.name)
    table = Table(
        [
            "phase",
            "spans",
            "total ms",
            "% wall",
            "DMA MB",
            "regcomm MB",
            "Gflop",
            "flop/B",
        ],
        title=title,
    )
    for name in order:
        group = grouped[name]
        seconds = sum(s.duration for s in group)
        dma = sum(_span_dma_bytes(s) for s in group)
        regcomm = sum(_span_regcomm_bytes(s) for s in group)
        flops = sum(_span_flops(s) for s in group)
        moved = dma + regcomm
        table.add_row(
            [
                name,
                len(group),
                f"{seconds * 1e3:.3f}",
                f"{100 * seconds / wall:.1f}" if wall else "-",
                f"{dma / 1e6:.2f}",
                f"{regcomm / 1e6:.2f}",
                f"{flops / 1e9:.3f}",
                f"{flops / moved:.2f}" if flops and moved else "-",
            ]
        )
    return table.render()


def model_gap_report(
    spans: Sequence[TraceSpan],
    modeled_seconds: dict,
    *,
    title: str | None = "model vs measured",
) -> str:
    """Diff measured phase wall time against a modeled timeline.

    ``modeled_seconds`` maps phase names to the performance model's
    predicted seconds (e.g. a :class:`SchedulePlan`'s makespan for
    ``session.batch``, the estimator's per-item times summed for
    ``dgemm``).  The measured side is the *simulation's* wall clock, so
    the ratio column exposes exactly where simulation cost and modeled
    device time diverge — the gap this layer exists to make visible.
    """
    table = Table(
        ["phase", "measured ms", "modeled ms", "measured/modeled"],
        title=title,
    )
    for name, modeled in modeled_seconds.items():
        measured = sum(s.duration for s in spans if s.name == name)
        ratio = f"{measured / modeled:.2f}x" if modeled else "-"
        table.add_row([name, f"{measured * 1e3:.3f}", f"{modeled * 1e3:.3f}", ratio])
    return table.render()
