"""A leveled, structured event log with JSONL export.

Alerts firing, CGs entering quarantine, caches evicting under pressure
— discrete *events*, not counters.  :class:`EventLog` records them as
structured dicts in a bounded ring (memory stays O(capacity) on an
always-on server), optionally streaming each one as a JSONL line to an
attached sink the moment it is emitted.

Levels follow the conventional ladder ``debug < info < warning <
critical``; events below the log's level are counted but not retained,
so a production log at ``info`` still reports how much debug chatter
it suppressed.  The per-level counters make the log its own metrics
source (``events.emitted``, ``events.warning``, ...).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from time import time
from typing import IO, Any, Callable

from repro.errors import ConfigError

__all__ = ["Event", "EventLog", "LEVELS"]

#: the level ladder; higher numbers are more severe.
LEVELS: dict[str, int] = {
    "debug": 10,
    "info": 20,
    "warning": 30,
    "critical": 40,
}


def _level_no(level: str) -> int:
    try:
        return LEVELS[str(level).lower()]
    except KeyError:
        raise ConfigError(
            f"unknown level {level!r} (expected one of {sorted(LEVELS)})"
        ) from None


@dataclass(frozen=True)
class Event:
    """One structured event: a leveled kind plus free-form fields."""

    #: monotonically increasing per-log sequence number.
    seq: int
    #: wall-clock emission time (``time.time`` seconds).
    time: float
    level: str
    #: machine-readable event kind, e.g. ``"alert.fired"``.
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "time": self.time,
            "level": self.level,
            "kind": self.kind,
            **self.fields,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, default=str)


class EventLog:
    """Bounded structured event ring with an optional JSONL sink.

    ``level`` filters retention (suppressed events are still counted);
    ``sink`` is any text stream — each retained event is written to it
    as one JSON line immediately, so tailing the file follows the
    system live.  Thread-safe: the serving tier emits from the event
    loop while the alert engine emits from the sampler thread.
    """

    def __init__(
        self,
        *,
        level: str = "info",
        capacity: int = 1024,
        sink: IO[str] | None = None,
        clock: Callable[[], float] = time,
    ) -> None:
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        self.level = str(level).lower()
        self._level_no = _level_no(level)
        self._events: deque[Event] = deque(maxlen=int(capacity))
        self._sink = sink
        self._clock = clock
        self._lock = threading.Lock()
        self._seq = 0
        self._counts: dict[str, int] = {name: 0 for name in LEVELS}
        self._suppressed = 0

    def emit(self, level: str, kind: str, **fields: Any) -> Event | None:
        """Record one event; returns ``None`` when below the log level."""
        level_no = _level_no(level)
        with self._lock:
            self._seq += 1
            self._counts[str(level).lower()] += 1
            if level_no < self._level_no:
                self._suppressed += 1
                return None
            event = Event(
                seq=self._seq,
                time=self._clock(),
                level=str(level).lower(),
                kind=str(kind),
                fields=dict(fields),
            )
            self._events.append(event)
            sink = self._sink
        if sink is not None:
            sink.write(event.to_json() + "\n")
        return event

    def debug(self, kind: str, **fields: Any) -> Event | None:
        return self.emit("debug", kind, **fields)

    def info(self, kind: str, **fields: Any) -> Event | None:
        return self.emit("info", kind, **fields)

    def warning(self, kind: str, **fields: Any) -> Event | None:
        return self.emit("warning", kind, **fields)

    def critical(self, kind: str, **fields: Any) -> Event | None:
        return self.emit("critical", kind, **fields)

    # -- reading ------------------------------------------------------

    def events(self, min_level: str = "debug") -> tuple[Event, ...]:
        """Retained events at or above ``min_level``, oldest first."""
        floor = _level_no(min_level)
        with self._lock:
            return tuple(
                e for e in self._events if _level_no(e.level) >= floor
            )

    def tail(self, n: int) -> tuple[Event, ...]:
        """The most recent ``n`` retained events, oldest first."""
        with self._lock:
            events = tuple(self._events)
        return events[-n:]

    def to_jsonl(self) -> str:
        """Every retained event as JSONL (one object per line)."""
        return "".join(e.to_json() + "\n" for e in self.events())

    def write_jsonl(self, path: str) -> None:
        """Dump the retained events to a JSONL file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    def stats(self) -> dict[str, float]:
        """Per-level emission counters (a registry source)."""
        with self._lock:
            out: dict[str, float] = {
                name: float(count) for name, count in self._counts.items()
            }
            out["emitted"] = float(self._seq)
            out["suppressed"] = float(self._suppressed)
            out["retained"] = float(len(self._events))
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EventLog(level={self.level}, {len(self)} retained, "
            f"{self._seq} emitted)"
        )
