"""Continuous sampling: registry snapshots into ring-buffer time series.

PR 4's :class:`~repro.obs.registry.MetricsRegistry` gives one flat
counter address space, but it is pull-only — a caller takes snapshots
and diffs them after the fact.  An always-on serving tier needs the
*history*: rates over the last second, burn over the last minute, a
sparkline on a dashboard.  This module adds it:

- :class:`TimeSeries` — one counter's recent ``(t, value)`` points in a
  fixed-size ring (memory is O(capacity) forever), with window deltas
  and per-second rate derivation for the monotonic counters that
  dominate the registry;
- :class:`MetricsSampler` — a daemon thread that snapshots a registry
  every ``period_seconds`` into one :class:`TimeSeries` per counter.
  Attach one to a :meth:`Session.metrics_registry
  <repro.core.session.Session.metrics_registry>`, a
  :meth:`CGScheduler.metrics_registry
  <repro.multi.scheduler.CGScheduler.metrics_registry>` or a
  :meth:`ReproServer.metrics_registry
  <repro.serve.server.ReproServer.metrics_registry>` and every counter
  those expose becomes a live series.

Because registry snapshots telescope — consecutive window deltas sum
to last-minus-first — summing a sampler's deltas over a whole run
reconciles bit-exactly with ``Session.stats().traffic``, the same
contract PR 4's span deltas honour (property-tested).

Sampling stays off the hot path: sources are read by the sampler
thread under the GIL (plain int/float counter reads, never locks held
by workers), and one full sample costs a few hundred microseconds, so
a 10 ms period steals only a few percent of GIL time from the serving
path (``benchmarks/bench_telemetry.py --smoke`` measures it and gates
against regressions such as sampling moving onto the request path).
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from time import monotonic

from repro.errors import ConfigError
from repro.obs.registry import MetricsRegistry

__all__ = ["MetricsSampler", "TimeSeries"]

#: a sampler listener: called after each sample with (sampler, snapshot).
Listener = Callable[["MetricsSampler", dict], None]


class TimeSeries:
    """A fixed-capacity ring of ``(time, value)`` points for one counter."""

    __slots__ = ("capacity", "_times", "_values", "_next", "_size")

    def __init__(self, capacity: int) -> None:
        if capacity < 2:
            raise ConfigError(f"capacity must be >= 2, got {capacity}")
        self.capacity = int(capacity)
        self._times: list[float] = [0.0] * self.capacity
        self._values: list[float] = [0.0] * self.capacity
        self._next = 0
        self._size = 0

    def push(self, t: float, value: float) -> None:
        """Append one point, overwriting the oldest when full."""
        self._times[self._next] = t
        self._values[self._next] = value
        self._next = (self._next + 1) % self.capacity
        if self._size < self.capacity:
            self._size += 1

    def __len__(self) -> int:
        return self._size

    def points(self) -> list[tuple[float, float]]:
        """Every retained point, oldest first."""
        if self._size < self.capacity:
            idx = range(self._size)
        else:
            idx = range(self._next, self._next + self.capacity)
        return [
            (self._times[i % self.capacity], self._values[i % self.capacity])
            for i in idx
        ]

    def latest(self) -> tuple[float, float] | None:
        """The most recent point, or ``None`` when empty."""
        if not self._size:
            return None
        i = (self._next - 1) % self.capacity
        return self._times[i], self._values[i]

    def window(
        self, seconds: float, now: float | None = None
    ) -> list[tuple[float, float]]:
        """Points no older than ``seconds`` before ``now`` (oldest first)."""
        pts = self.points()
        if not pts:
            return []
        horizon = (pts[-1][0] if now is None else now) - seconds
        return [p for p in pts if p[0] >= horizon]

    def _bounds(
        self, seconds: float, now: float | None
    ) -> tuple[float, float, float, float, int] | None:
        """``(t_first, v_first, t_last, v_last, n)`` of the window.

        Walks the ring backwards from the newest point, so the alert
        engine's per-sample rate lookups never materialize point
        lists (this runs on the sampler thread, inside its budget).
        """
        if not self._size:
            return None
        i = (self._next - 1) % self.capacity
        t_last = self._times[i]
        v_last = self._values[i]
        horizon = (t_last if now is None else now) - seconds
        if t_last < horizon:
            return None
        t_first, v_first, n = t_last, v_last, 1
        for _ in range(self._size - 1):
            i = (i - 1) % self.capacity
            t = self._times[i]
            if t < horizon:
                break
            t_first, v_first = t, self._values[i]
            n += 1
        return t_first, v_first, t_last, v_last, n

    def delta(self, seconds: float, now: float | None = None) -> float:
        """Value change over the window (0 with fewer than two points)."""
        bounds = self._bounds(seconds, now)
        if bounds is None or bounds[4] < 2:
            return 0.0
        return bounds[3] - bounds[1]

    def rate(self, seconds: float, now: float | None = None) -> float:
        """Per-second rate over the window (0 when underdetermined).

        Meaningful for monotonic counters; a reset (value decreasing)
        clamps to 0 rather than reporting a negative rate.
        """
        bounds = self._bounds(seconds, now)
        if bounds is None or bounds[4] < 2:
            return 0.0
        t_first, v_first, t_last, v_last, _ = bounds
        elapsed = t_last - t_first
        if elapsed <= 0:
            return 0.0
        return max(0.0, (v_last - v_first) / elapsed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TimeSeries({self._size}/{self.capacity} points)"


class MetricsSampler:
    """A background thread sampling one registry into time series.

    Use as a context manager (or :meth:`start`/:meth:`stop`)::

        sampler = MetricsSampler(session.metrics_registry(),
                                 period_seconds=0.01)
        with sampler:
            session.batch(items, parallel=True)
        total = sum(d for _, d in sampler.deltas("session.traffic.dma_bytes"))

    :meth:`sample_once` takes an immediate sample on the calling thread
    (the sampler need not be running), which is how tests pin exact
    window boundaries and how :meth:`stop` guarantees a final sample at
    shutdown — so the last window always covers the full run.

    ``listeners`` (see :meth:`add_listener`) run on the sampler thread
    after each sample; the alert engine registers itself this way.  A
    listener raising is counted in ``errors`` and never kills the
    thread.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        period_seconds: float = 0.01,
        capacity: int = 512,
        clock: Callable[[], float] = monotonic,
    ) -> None:
        if period_seconds <= 0:
            raise ConfigError(
                f"period_seconds must be > 0, got {period_seconds}"
            )
        self.registry = registry
        self.period_seconds = float(period_seconds)
        self.capacity = int(capacity)
        self.clock = clock
        self.samples = 0
        self.errors = 0
        self._series: dict[str, TimeSeries] = {}
        self._listeners: list[Listener] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.started_at: float | None = None

    # -- lifecycle ----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "MetricsSampler":
        """Arm the sampling thread (idempotent while running)."""
        if self.running:
            return self
        self._stop.clear()
        if self.started_at is None:
            self.started_at = self.clock()
        self.sample_once()  # t=0 baseline so the first window is complete
        self._thread = threading.Thread(
            target=self._run, name="repro-metrics-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and take one final sample (idempotent)."""
        thread = self._thread
        self._stop.set()
        if thread is not None:
            thread.join()
            self._thread = None
            self.sample_once()  # the closing boundary of the last window

    def __enter__(self) -> "MetricsSampler":
        return self.start()

    def __exit__(self, *exc_info: object) -> bool:
        self.stop()
        return False

    def _run(self) -> None:
        while not self._stop.wait(self.period_seconds):
            self.sample_once()

    # -- sampling -----------------------------------------------------

    def sample_once(self) -> dict:
        """Take one sample now; returns the raw snapshot dict."""
        t = self.clock()
        try:
            snapshot = self.registry.snapshot()
        except Exception:
            with self._lock:
                self.errors += 1
            return {}
        with self._lock:
            for name, value in snapshot.items():
                series = self._series.get(name)
                if series is None:
                    series = self._series[name] = TimeSeries(self.capacity)
                series.push(t, float(value))
            self.samples += 1
        for listener in list(self._listeners):
            try:
                listener(self, snapshot)
            except Exception:
                with self._lock:
                    self.errors += 1
        return snapshot

    def add_listener(self, listener: Listener) -> None:
        """Run ``listener(sampler, snapshot)`` after every sample."""
        self._listeners.append(listener)

    # -- reading ------------------------------------------------------

    def names(self) -> tuple[str, ...]:
        """Every counter name seen so far, sorted."""
        with self._lock:
            return tuple(sorted(self._series))

    def series(self, name: str) -> TimeSeries | None:
        """The ring buffer for one counter (``None`` if never seen)."""
        with self._lock:
            return self._series.get(name)

    def latest(self) -> dict[str, float]:
        """The most recent value of every counter."""
        with self._lock:
            out: dict[str, float] = {}
            for name, series in self._series.items():
                point = series.latest()
                if point is not None:
                    out[name] = point[1]
            return out

    def deltas(self, name: str) -> list[tuple[float, float]]:
        """Per-window ``(t, value_delta)`` pairs between samples.

        Consecutive deltas telescope: their sum equals the last sample
        minus the first, which is what makes sampler windows reconcile
        bit-exactly with cumulative session accounting.
        """
        series = self.series(name)
        if series is None:
            return []
        pts = series.points()
        return [
            (t1, v1 - v0) for (_, v0), (t1, v1) in zip(pts, pts[1:])
        ]

    def rate(self, name: str, window_seconds: float) -> float:
        """Per-second rate of one counter over a trailing window."""
        series = self.series(name)
        return series.rate(window_seconds) if series is not None else 0.0

    def delta(self, name: str, window_seconds: float) -> float:
        """Value change of one counter over a trailing window."""
        series = self.series(name)
        return series.delta(window_seconds) if series is not None else 0.0

    def stats(self) -> dict[str, float]:
        """Self-telemetry (a registry source: ``sampler.*``)."""
        with self._lock:
            return {
                "samples": float(self.samples),
                "errors": float(self.errors),
                "series": float(len(self._series)),
                "period_seconds": self.period_seconds,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self.running else "stopped"
        return (
            f"MetricsSampler({state}, {self.samples} samples, "
            f"{len(self._series)} series @ {self.period_seconds * 1e3:.0f} ms)"
        )
