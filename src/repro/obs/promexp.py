"""Prometheus/OpenMetrics text exposition for registries and histograms.

Renders the flat counter address space of a
:class:`~repro.obs.registry.MetricsRegistry` snapshot — plus any
:class:`~repro.obs.histogram.LatencyHistogram` families — as the
OpenMetrics text format a Prometheus scraper (or
``tools/check_metrics.py``) consumes::

    # TYPE repro_serve_admitted counter
    repro_serve_admitted_total 32
    # TYPE repro_serve_latency_seconds histogram
    repro_serve_latency_seconds_bucket{bin="gemm:64x96x32",le="0.001"} 3
    ...
    # EOF

Naming scheme (documented in ``docs/observability.md``): the dotted
registry name is sanitized to ``[a-zA-Z0-9_:]`` with dots becoming
underscores, prefixed ``repro_``.  Monotonic counters — recognized by
their leaf name (``bytes``, ``hits``, ``count``, ...) — are exposed as
``counter`` families with the mandated ``_total`` sample suffix;
everything else is a ``gauge``.  Values render via ``repr`` so floats
round-trip bit-exactly: the serve smoke test parses its own scrape and
reconciles ``serve.request`` traffic totals against
``Session.stats().traffic`` with equality, not tolerance.
"""

from __future__ import annotations

import math
import re
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.obs.histogram import LatencyHistogram

__all__ = [
    "HistogramFamily",
    "format_value",
    "is_counter_name",
    "metric_name",
    "render_openmetrics",
]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: leaf components (after the last dot) treated as monotonic counters.
COUNTER_LEAVES = frozenset(
    {
        "admitted",
        "allocations",
        "backoff_seconds",
        "batched_requests",
        "batches",
        "builds",
        "bytes",
        "bytes_get",
        "bytes_moved",
        "bytes_put",
        "cache_hits",
        "calls",
        "col_broadcasts",
        "col_items",
        "completed",
        "count",
        "dma_bytes",
        "dma_transactions",
        "emitted",
        "errors",
        "evaluations",
        "evictions",
        "failed",
        "failures",
        "fallbacks",
        "fired",
        "flops",
        "frees",
        "gets",
        "hits",
        "in_place_stores",
        "injected",
        "items",
        "messages",
        "misses",
        "p2p_items",
        "p2p_sends",
        "padded_flops",
        "plan_hits",
        "puts",
        "quarantines",
        "receives",
        "recovered",
        "regcomm_bytes",
        "rejected",
        "resolved",
        "respilled",
        "retries",
        "row_broadcasts",
        "row_items",
        "samples",
        "seconds",
        "staged",
        "stores",
        "suppressed",
        "transactions",
        "writebacks",
    }
)

#: leaf names that end like counters but are point-in-time gauges.
_GAUGE_LEAVES = frozenset({"bytes_peak", "peak_bytes", "used_bytes"})


def metric_name(raw: str, prefix: str = "repro") -> str:
    """Sanitize a dotted registry name into a Prometheus metric name."""
    name = _NAME_OK.sub("_", str(raw).replace(".", "_"))
    if prefix:
        name = f"{prefix}_{name}"
    if not name or not (name[0].isalpha() or name[0] in "_:"):
        name = f"_{name}"
    return name


def is_counter_name(raw: str) -> bool:
    """True when the dotted name's leaf marks a monotonic counter."""
    leaf = str(raw).rsplit(".", 1)[-1].lower()
    if leaf in _GAUGE_LEAVES:
        return False
    return leaf in COUNTER_LEAVES or leaf.endswith("_total")


def format_value(value: float) -> str:
    """Round-trippable sample value: ints plain, floats via ``repr``."""
    if isinstance(value, bool):  # pragma: no cover - snapshots drop bools
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


@dataclass(frozen=True)
class HistogramFamily:
    """One named histogram metric with labelled sub-series.

    ``series`` maps a label value (e.g. a shape-bin string) to its
    histogram; every histogram in a family must share one bucket scale
    so the family is mergeable and renders one consistent ``le`` grid.
    An empty ``label`` renders a single unlabelled series.
    """

    name: str
    label: str
    series: tuple[tuple[str, LatencyHistogram], ...]

    def render(self, prefix: str = "repro") -> list[str]:
        base = metric_name(self.name, prefix)
        lines = [f"# TYPE {base} histogram"]
        for label_value, hist in self.series:
            labels = (
                f'{self.label}="{_escape_label(label_value)}",'
                if self.label
                else ""
            )
            for bound, cum in zip(hist.bucket_bounds(), hist.cumulative()):
                le = "+Inf" if math.isinf(bound) else repr(bound)
                lines.append(
                    f'{base}_bucket{{{labels}le="{le}"}} {cum}'
                )
            tail = f"{{{labels[:-1]}}}" if labels else ""
            lines.append(f"{base}_sum{tail} {format_value(hist.sum)}")
            lines.append(f"{base}_count{tail} {hist.count}")
        return lines


def render_openmetrics(
    snapshot: Mapping[str, float],
    families: Iterable[HistogramFamily] = (),
    *,
    prefix: str = "repro",
) -> str:
    """The OpenMetrics text exposition of a snapshot plus histograms.

    Counter values below zero (a source reset mid-scrape) are clamped
    to 0 rather than emitting an invalid negative counter.  Ends with
    the ``# EOF`` terminator the format requires.
    """
    lines: list[str] = []
    seen: set[str] = set()
    for raw in sorted(snapshot):
        value = snapshot[raw]
        name = metric_name(raw, prefix)
        if name in seen:  # two dotted names sanitizing identically
            continue
        seen.add(name)
        if is_counter_name(raw):
            lines.append(f"# TYPE {name} counter")
            clamped = value if value >= 0 else 0
            lines.append(f"{name}_total {format_value(clamped)}")
        else:
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {format_value(value)}")
    for family in families:
        lines.extend(family.render(prefix))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
