"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still discriminating the hardware-model violations that matter when
porting blocking parameters (LDM overflow, DMA alignment, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "LDMAllocationError",
    "AlignmentError",
    "DMAError",
    "UnsupportedModeError",
    "RegisterFileError",
    "RegisterCommError",
    "MeshError",
    "SimulationError",
    "DeadlockError",
    "PipelineError",
    "BlockingError",
    "UnsupportedShapeError",
    "MappingError",
    "SharingError",
    "FaultInjectedError",
    "QuarantineError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError, ValueError):
    """An architecture or blocking configuration value is invalid."""


class LDMAllocationError(ReproError, MemoryError):
    """A request exceeds the 64 KB local device memory of a CPE."""


class AlignmentError(ReproError, ValueError):
    """An address or size violates the 128 B DMA alignment rule."""


class DMAError(ReproError, RuntimeError):
    """A DMA descriptor is malformed or cannot be executed."""


class UnsupportedModeError(DMAError):
    """The requested DMA mode exists on SW26010 but is not modelled.

    The paper only exercises ``PE_MODE`` and ``ROW_MODE``; the remaining
    modes are declared so descriptors can name them, but executing them
    raises this error rather than silently doing the wrong distribution.
    """


class RegisterFileError(ReproError, ValueError):
    """Illegal vector-register index or lane access."""


class RegisterCommError(ReproError, RuntimeError):
    """Misuse of the register communication mechanism."""


class MeshError(ReproError, ValueError):
    """A coordinate is outside the 8x8 CPE mesh."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event engine reached an inconsistent state."""


class DeadlockError(SimulationError):
    """All processes are blocked and no events remain."""


class PipelineError(ReproError, RuntimeError):
    """The instruction pipeline model was fed an invalid stream."""


class BlockingError(ConfigError):
    """Blocking parameters violate a hardware constraint."""


class UnsupportedShapeError(ReproError, ValueError):
    """Matrix shape is not a multiple of the blocking factors.

    The paper implements the case where dimensions are multiples of the
    block factors (Sec III); :func:`repro.core.api.dgemm` offers
    ``pad=True`` as an extension for other shapes.
    """


class MappingError(ReproError, RuntimeError):
    """Data-thread mapping produced an inconsistent distribution."""


class SharingError(ReproError, RuntimeError):
    """Collective data-sharing roles are inconsistent for a step."""


class FaultInjectedError(ReproError, RuntimeError):
    """A deliberately injected transient fault (chaos testing).

    Raised by :class:`repro.resil.FaultInjector` at an armed fault site
    (``dma.get``, ``dma.put``, ``regcomm``, ``memory.store``,
    ``compute``, ``cg``).  The resilience layer treats this — and only
    this — as *transient*: a retry re-runs the whole item from freshly
    restaged operands, so recovery is bit-exact.
    """

    def __init__(self, site: str, *, cg: int | None = None, phase: str | None = None):
        self.site = site
        self.cg = cg
        self.phase = phase
        where = f" on CG{cg}" if cg is not None else ""
        during = f" during {phase}" if phase else ""
        super().__init__(f"injected fault at {site}{where}{during}")


class QuarantineError(ReproError, RuntimeError):
    """No healthy core group remains to run an item on.

    Raised (or recorded as a per-item error, under failure isolation)
    when whole-CG faults have quarantined the entire scheduler pool.
    """
