"""Multi-CG batch scheduling: a device pool over the chip's core groups.

The paper optimizes DGEMM on one core group; the SW26010 has four, each
with its own memory controller and DRAM slice, and a *batched* GEMM
stream (LU trailing updates, convolution layers, served inference
traffic) is exactly the workload that can occupy all of them at once —
the items are independent, so no inter-CG communication is needed at
all.  :class:`CGScheduler` is the runtime layer that turns the
single-CG kernel into a chip-level throughput engine:

- **shape-aware binning** — items of the same (padded) shape are routed
  to the same CG, so that CG's
  :class:`~repro.core.context.ExecutionContext` keeps serving them from
  its LRU staging-plan cache (in-place restage, one host copy per
  operand, zero fresh allocations);
- **least-modeled-load dispatch** — a shape's first appearance lands on
  the CG with the least accumulated modeled time (via
  :class:`~repro.perf.estimator.Estimator`), and a bin spills to the
  least-loaded CG when staying would worsen the makespan by more than
  the item's own cost, re-homing the bin so the cache warms up there;
- **per-item failure isolation** — an item that raises is recorded as
  an :class:`ItemError` and its CG's context stays usable; the other
  items and CGs are unaffected;
- **resilience** — with a :class:`~repro.resil.FaultInjector` and a
  :class:`~repro.resil.RetryPolicy` wired in, a transiently faulted
  item retries from freshly restaged operands (bit-exact recovery,
  deterministic backoff charged in modeled seconds), degrades once to
  the ``fallback_engine`` when retries exhaust, and a whole-CG fault
  (site ``"cg"``) quarantines the group and respills its queue to the
  least-loaded healthy CG; every disturbed item carries a
  :class:`~repro.resil.FaultReport` in ``result.fault_reports``;
- **aggregated accounting** — :class:`ScheduleResult` reports per-CG
  traffic deltas, the modeled makespan vs. the serial single-CG time,
  and the load-balance efficiency over the *healthy* CGs.

Every CG is driven through its own long-lived ``ExecutionContext``,
entered for the duration of one :meth:`CGScheduler.run` — so after a
pool run (raise or no raise) every CG's ``MainMemory.used_bytes`` is
back at its pre-run baseline, the same memory-budget invariant the
single-CG path guarantees.

Parallel dispatch
-----------------

``run(items, parallel=True)`` executes each CG's item queue on its own
worker thread from a pool the scheduler owns.  The heavy work per item
— the fused engine's panel ``np.matmul`` calls and the staging copies —
releases the GIL, so a 4-CG batch genuinely overlaps on a multi-core
host while the Python coordination glue stays thin.  Thread correctness
rests on a sharding discipline rather than a big lock:

- ``counts`` / ``failures`` / ``run_seconds`` and each CG's
  ``ExecutionContext`` are **sharded per CG**: only the worker that
  owns a core group mutates its slots, so per-CG accounting needs no
  lock and span-metered context deltas stay exact;
- the cross-CG structures — the quarantine set, respill target
  selection over the shared load vector, the ``unplaced`` tally — are
  guarded by one **accounting lock**; :class:`~repro.resil.RecoveryStats`
  mutations take a **resilience lock**; the shared
  :class:`~repro.resil.FaultInjector` and the modeled-seconds cache
  carry their own locks;
- a quarantined CG's worker turns into a *respiller*: items left on its
  queue are re-homed (under the accounting lock) to the least-loaded
  healthy CG's queue and executed by that CG's own worker, so the
  single-writer discipline survives failover.

Serial mode remains the default and is bit-identical to previous
releases — the ladder stepper runs the exact same operation sequence,
just driven by an inline loop instead of worker queues.
"""

from __future__ import annotations

import collections
import contextlib
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigError, FaultInjectedError, QuarantineError
from repro.api import GemmRequest
from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.core.api import dgemm
from repro.core.batch import validate_items
from repro.core.context import ContextStats, ExecutionContext
from repro.core.engine.plans import PlanCache
from repro.core.params import BlockingParams
from repro.core.variants import get_variant
from repro.multi.processor import SW26010Processor
from repro.obs.registry import MetricsRegistry, context_meter
from repro.obs.tracer import ensure_tracer
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perf.estimator import Estimator
from repro.resil.faults import FaultInjector
from repro.resil.policy import FaultReport, RecoveryStats, RetryPolicy
from repro.tuning.table import TuningTable

__all__ = [
    "CGScheduler",
    "CGTraffic",
    "ItemError",
    "POLICIES",
    "SchedulePlan",
    "ScheduleResult",
]

#: dispatch policies accepted by ``CGScheduler(policy=...)``:
#: ``"binned"`` is the shape-affine least-loaded dispatch described in
#: the module docstring; ``"round_robin"`` ignores shape affinity and
#: modeled load entirely (items go to ``idx % pool``) — it exists as
#: the ablation baseline that quantifies what binning buys.
POLICIES = ("binned", "round_robin")


@dataclass(frozen=True)
class SchedulePlan:
    """Where every item goes, and what the model says it will cost.

    Produced by :meth:`CGScheduler.plan` (or :meth:`plan_shapes`, which
    needs only ``(m, n, k)`` tuples — paper-scale planning allocates no
    matrices).  ``cg_seconds`` are modeled times, so the makespan and
    efficiency figures are predictions of the co-scheduled run, not
    wall-clock measurements of the Python simulation.
    """

    #: CG index per item, in item order.
    assignments: tuple[int, ...]
    #: modeled seconds per item (at its padded shape).
    item_seconds: tuple[float, ...]
    #: accumulated modeled seconds per CG.
    cg_seconds: tuple[float, ...]
    #: (padded shape, blocking params) -> CG currently homing that bin.
    shape_bins: dict = field(hash=False, compare=False, default_factory=dict)

    @property
    def n_core_groups(self) -> int:
        return len(self.cg_seconds)

    @property
    def serial_seconds(self) -> float:
        """Modeled time of the same batch serialized on one CG."""
        return sum(self.item_seconds)

    @property
    def makespan_seconds(self) -> float:
        """Modeled completion time: the most-loaded CG's total."""
        return max(self.cg_seconds) if self.cg_seconds else 0.0

    @property
    def modeled_speedup(self) -> float:
        """``serial / makespan`` — what the pool buys over one CG."""
        makespan = self.makespan_seconds
        return self.serial_seconds / makespan if makespan else 1.0

    @property
    def load_balance_efficiency(self) -> float:
        """``serial / (n_cgs * makespan)`` — 1.0 is a perfect split."""
        return self.modeled_speedup / self.n_core_groups


@dataclass(frozen=True)
class ItemError:
    """One failed batch item, attributed to its CG (failure isolation)."""

    index: int
    core_group: int
    kind: str
    message: str


@dataclass(frozen=True)
class CGTraffic:
    """One CG's share of a pool run."""

    core_group: int
    items: int
    failures: int
    #: modeled seconds of the work run here (every attempt dispatched
    #: to this CG, plus retry backoff charged against it).
    modeled_seconds: float
    #: staging/DMA/regcomm deltas of this CG's context over the run.
    stats: ContextStats


@dataclass(frozen=True)
class ScheduleResult:
    """Aggregate of a pool run: outputs, failures, per-CG traffic, plan.

    ``traffic`` is the :class:`ContextStats` sum over every CG's
    context delta (one ``plus`` fold, no ad-hoc per-field arithmetic);
    the ``dma_bytes``/``dma_transactions``/``regcomm_bytes`` properties
    mirror :class:`repro.core.batch.BatchResult`, so callers that
    consume a serial batch result can consume a scheduled one
    unchanged.  ``flops`` counts successfully executed items only.

    Timing properties are computed from the *runtime* per-CG seconds in
    ``per_cg`` (which include retry backoff and respilled work), not
    the plan's predictions — the two coincide exactly on a fault-free
    run.  ``load_balance_efficiency`` divides by the healthy CG count:
    a pool that lost a CG to quarantine is not penalized for the work
    the dead CG could not have done.

    ``unplaced`` lists the items no CG could accept (every group
    quarantined before they dispatched).  They appear in ``errors``
    with a :class:`~repro.errors.QuarantineError`, but are *not*
    charged to any CG's ``items``/``failures`` — an item that never
    executed anywhere must not skew :class:`CGTraffic` or the
    load-balance figures of the group that happened to be its last
    planned home.
    """

    #: per-item results in input order; ``None`` where the item failed.
    outputs: tuple
    errors: tuple[ItemError, ...]
    per_cg: tuple[CGTraffic, ...]
    plan: SchedulePlan
    #: summed staging/DMA/regcomm deltas across the pool's contexts.
    traffic: ContextStats
    flops: int
    padded_flops: int = 0
    #: one report per fault-disturbed item (empty on a clean run).
    fault_reports: tuple[FaultReport, ...] = ()
    #: CGs quarantined by whole-CG faults during this run.
    quarantined: tuple[int, ...] = ()
    #: items (by index) that no healthy CG could accept — counted here,
    #: never in any CG's traffic.
    unplaced: tuple[int, ...] = ()
    #: per-item staging/DMA/regcomm deltas, in input order (every
    #: attempt the item made, on whichever CGs it touched).  Exact, not
    #: approximate: each CG's context is mutated only by the worker
    #: running an item's attempt, so attempt-scoped snapshots partition
    #: the CG's delta — summing ``item_traffic`` reproduces ``traffic``
    #: bit-exactly.  Empty tuple on results from older call sites.
    item_traffic: tuple[ContextStats, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def dma_bytes(self) -> int:
        return self.traffic.dma_bytes

    @property
    def dma_transactions(self) -> int:
        return self.traffic.dma_transactions

    @property
    def regcomm_bytes(self) -> int:
        return self.traffic.regcomm_bytes

    @property
    def n_core_groups(self) -> int:
        return len(self.per_cg)

    @property
    def healthy_core_groups(self) -> int:
        """CGs still accepting work at the end of the run."""
        return self.n_core_groups - len(self.quarantined)

    @property
    def recovered(self) -> tuple[FaultReport, ...]:
        """The fault reports whose items still produced a correct output."""
        return tuple(r for r in self.fault_reports if r.recovered)

    @property
    def makespan_seconds(self) -> float:
        """Runtime makespan: the most-loaded CG's accumulated seconds."""
        if not self.per_cg:
            return self.plan.makespan_seconds
        return max(t.modeled_seconds for t in self.per_cg)

    @property
    def serial_seconds(self) -> float:
        return self.plan.serial_seconds

    @property
    def modeled_speedup(self) -> float:
        makespan = self.makespan_seconds
        return self.serial_seconds / makespan if makespan else 1.0

    @property
    def load_balance_efficiency(self) -> float:
        """``speedup / healthy CGs`` — 1.0 is a perfect healthy split."""
        healthy = self.healthy_core_groups
        return self.modeled_speedup / healthy if healthy else 0.0

    @property
    def padding_overhead(self) -> float:
        """``padded_flops / flops`` — 1.0 means no padding waste."""
        return self.padded_flops / self.flops if self.flops else 1.0

    def __len__(self) -> int:
        return len(self.outputs)


class _ItemTask:
    """One batch item's mutable trip through the recovery ladder.

    Owning the ladder state (retries burned, faults seen, current home)
    lets an item cross threads on respill without losing its history:
    the quarantined CG's worker re-enqueues the *task*, and the healthy
    CG's worker resumes exactly where the ladder left off.
    """

    __slots__ = (
        "idx", "item", "seconds", "home", "engine", "params",
        "retries", "attempts", "backoff", "first_site", "q_here",
        "fallback_used", "traffic",
    )

    def __init__(
        self, idx: int, item: GemmRequest, home: int, seconds: float,
        engine: str, params: BlockingParams,
    ) -> None:
        self.idx = idx
        self.item = item
        self.seconds = seconds
        self.home = home
        self.engine = engine
        #: this item's blocking parameters (a per-item ``blocking=``
        #: override, a tuned-table pick, or the scheduler default).
        self.params = params
        self.retries = 0
        self.attempts = 0
        self.backoff = 0.0
        self.first_site: str | None = None
        self.q_here: list[int] = []
        self.fallback_used: str | None = None
        #: this item's accumulated context delta across every attempt.
        self.traffic = ContextStats.zero()

    def report(self, recovered: bool, exc: BaseException | None = None) -> FaultReport:
        return FaultReport(
            index=self.idx,
            site=self.first_site,
            attempts=self.attempts,
            retries=self.retries,
            backoff_seconds=self.backoff,
            fallback_engine=self.fallback_used,
            quarantined_cgs=tuple(self.q_here),
            core_group=self.home,
            recovered=recovered,
            error_kind=type(exc).__name__ if exc is not None else None,
            error_message=str(exc) if exc is not None else None,
        )

    @property
    def disturbed(self) -> bool:
        return bool(
            self.first_site or self.retries or self.fallback_used or self.q_here
        )


#: outcome kinds returned by ``CGScheduler._run_item``.
_OK, _ERROR, _UNPLACED, _RESPILL = "ok", "error", "unplaced", "respill"


class CGScheduler:
    """Dispatch a stream of :class:`~repro.api.GemmRequest`s across a CG pool.

    One scheduler owns an :class:`SW26010Processor` (built here unless
    passed in), a per-CG :class:`ExecutionContext`, and — once a
    parallel run has been requested — a thread pool with one worker per
    core group.  ``run`` plans the batch, executes every item on its
    assigned CG (inline, or on the CG's worker thread with
    ``parallel=True``), and returns a :class:`ScheduleResult`;
    ``plan``/``plan_shapes`` expose the dispatch decision and modeled
    timing without executing anything.

    ``n_core_groups`` may restrict the pool to a prefix of the chip's
    CGs (the 1-CG pool is the serial baseline the scaling experiment
    compares against).  The scheduler is not reentrant: overlapping
    ``run`` calls would race on the per-CG contexts, so a second
    in-flight call raises :class:`~repro.errors.ConfigError` loudly
    instead of corrupting state.

    Resilience is opt-in: pass ``injector=`` (wired through every CG's
    devices here), ``retry_policy=`` to retry transiently faulted items
    with deterministic modeled backoff, and ``fallback_engine=`` to
    re-run an item once on a different engine after retries exhaust.
    Whole-CG faults (site ``"cg"``, fired at dispatch) quarantine the
    group for the rest of the run and respill its queue to the
    least-loaded healthy CG.  Cumulative counters live in
    :meth:`resil_stats`; per-item outcomes in
    :attr:`ScheduleResult.fault_reports`.

    Call :meth:`close` (or use the scheduler as a context manager) to
    release the worker pool; a scheduler that never ran in parallel
    holds no threads.
    """

    def __init__(
        self,
        processor: SW26010Processor | None = None,
        *,
        n_core_groups: int | None = None,
        variant: str = "SCHED",
        engine: str = "device",
        params: BlockingParams | None = None,
        spec: SW26010Spec = DEFAULT_SPEC,
        calibration: Calibration = DEFAULT_CALIBRATION,
        pad: bool = True,
        check: bool = False,
        tracer=None,
        injector: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
        fallback_engine: str | None = None,
        plan_cache: PlanCache | None = None,
        policy: str = "binned",
        tuned: TuningTable | str | None = None,
    ) -> None:
        self.processor = processor or SW26010Processor(spec)
        self.tracer = ensure_tracer(tracer)
        limit = self.processor.N_CORE_GROUPS
        pool = limit if n_core_groups is None else int(n_core_groups)
        if not 1 <= pool <= limit:
            raise ConfigError(
                f"n_core_groups must be in [1, {limit}], got {pool}"
            )
        self.n_core_groups = pool
        self.variant = str(variant).upper()
        self.engine = str(engine).lower()
        self.policy = str(policy).lower()
        if self.policy not in POLICIES:
            raise ConfigError(
                f"unknown dispatch policy {policy!r} "
                f"(expected one of {', '.join(POLICIES)})"
            )
        # the tuned table only overrides *defaulted* blocking: a caller
        # who passed explicit params said what they want, and gets it.
        self._explicit_params = params is not None
        self.tuned = (
            TuningTable.load(tuned) if isinstance(tuned, str) else tuned
        )
        self._calibration = calibration
        self.params = params or get_variant(self.variant).default_params()
        self.pad = pad
        self.check = check
        self.injector = injector
        if injector is not None:
            self.processor.attach_injector(injector)
        self.retry_policy = retry_policy
        self.fallback_engine = (
            str(fallback_engine).lower() if fallback_engine else None
        )
        self.resil = RecoveryStats()
        #: compiled index plans, one cache for the whole pool: plans are
        #: immutable after build, so every CG worker thread reads the
        #: same plan object for a repeated shape — one build per
        #: signature per scheduler, budgeted by the pool's LDM bytes.
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache(
            spec=self.processor.spec, n_core_groups=pool
        )
        self._estimator = Estimator(self.processor.spec, calibration)
        self._contexts = [
            ExecutionContext(self.processor.cg(g)) for g in range(pool)
        ]
        #: (padded shape, params) -> modeled seconds (estimates are pure
        #: functions of shape and blocking, so one batch full of repeats
        #: costs one estimate).
        self._seconds_cache: dict[tuple, float] = {}
        # -- thread coordination (see module docstring) ----------------
        #: non-reentrancy guard: held for the duration of one run().
        self._run_guard = threading.Lock()
        #: guards cross-CG accounting: quarantine set, respill target
        #: selection over the load vector, the unplaced tally.
        self._account_lock = threading.Lock()
        #: guards every RecoveryStats mutation.
        self._resil_lock = threading.Lock()
        #: guards the modeled-seconds estimate cache.
        self._cache_lock = threading.Lock()
        #: serializes close() against itself (idempotency under
        #: concurrent calls) and the _workers handle swap.
        self._close_lock = threading.Lock()
        #: lazily created pool of one worker per CG (parallel runs only).
        self._workers: ThreadPoolExecutor | None = None

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Release the worker pool, if one was ever created.

        Idempotent, and safe to call concurrently — with another
        ``close()`` or with an in-flight :meth:`run`: it first waits
        out any run holding the non-reentrancy guard (so the pool is
        never yanked from under live workers), then atomically takes
        ownership of the pool handle, so exactly one caller performs
        the shutdown.  A later :meth:`run` simply builds a fresh pool.
        """
        with self._run_guard:
            with self._close_lock:
                workers, self._workers = self._workers, None
        if workers is not None:
            workers.shutdown(wait=True)
        # drain compiled plans with the pool: a closed scheduler holds
        # no index-table bytes (the memory-invariant checker verifies).
        self.plan_cache.clear()

    def __enter__(self) -> "CGScheduler":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def _worker_pool(self) -> ThreadPoolExecutor:
        # only called while a run holds the non-reentrancy guard, so it
        # cannot race close() (which waits on the same guard).
        with self._close_lock:
            if self._workers is None:
                self._workers = ThreadPoolExecutor(
                    max_workers=self.n_core_groups,
                    thread_name_prefix="cg-worker",
                )
            return self._workers

    # -- planning ------------------------------------------------------

    def modeled_item_seconds(
        self, m: int, n: int, k: int, params: BlockingParams | None = None
    ) -> float:
        """Modeled single-CG seconds for one item (at its padded shape).

        ``params`` defaults to the scheduler's blocking; per-item
        overrides and tuned-table picks pass their own so the model
        prices the blocking that will actually run.
        """
        params = params or self.params
        key = (params.pad_shape(m, n, k), params)
        with self._cache_lock:
            seconds = self._seconds_cache.get(key)
        if seconds is None:
            seconds = self._estimator.estimate(
                self.variant, *key[0], params=params
            ).seconds
            with self._cache_lock:
                self._seconds_cache[key] = seconds
        return seconds

    def resolve_blocking(
        self,
        shapes: Sequence[tuple[int, int, int]],
        blocking: BlockingParams | Sequence[BlockingParams | None] | None = None,
        engine: str | None = None,
    ) -> list[BlockingParams]:
        """Effective per-item blocking, validated (errors name the item).

        Resolution order per item: an explicit ``blocking=`` override
        wins; otherwise a configured tuned table is consulted — unless
        the scheduler itself was built with explicit ``params=`` —
        with the estimator picking for bins the table misses; otherwise
        the scheduler's default parameters apply.  Every resolved
        choice is checked against the LDM budget and the variant's
        buffering regime up front, so a bad override fails before any
        item executes, naming its index in ``dgemm_batch`` style.
        """
        count = len(shapes)
        if blocking is None:
            overrides: list[BlockingParams | None] = [None] * count
        elif isinstance(blocking, BlockingParams):
            overrides = [blocking] * count
        else:
            overrides = list(blocking)
            if len(overrides) != count:
                raise ConfigError(
                    f"blocking= carries {len(overrides)} overrides for "
                    f"{count} items"
                )
        spec = self.processor.spec
        traits = get_variant(self.variant).traits
        engine = (engine or self.engine).lower()
        consult = self.tuned is not None and not self._explicit_params
        resolved: list[BlockingParams] = []
        for idx, (override, (m, n, k)) in enumerate(zip(overrides, shapes)):
            params = override
            if params is not None and not isinstance(params, BlockingParams):
                raise ConfigError(
                    f"batch item {idx}: blocking override must be "
                    f"BlockingParams, got {type(params).__name__}"
                )
            if params is None and consult:
                params = self.tuned.resolve(
                    self.variant, engine, m, n, k,
                    spec=spec, calibration=self._calibration,
                ).params
            if params is None:
                params = self.params
            try:
                params.validate(spec)
            except Exception as exc:
                raise ConfigError(f"batch item {idx}: {exc}") from None
            # the RAW path ignores blocking entirely; for the shared
            # variants a wrong buffering regime would only surface as an
            # engine error mid-batch — catch it here, with the index.
            if traits.shared and bool(params.double_buffered) != bool(
                traits.double_buffered
            ):
                regime = (
                    "double" if traits.double_buffered else "single"
                )
                raise ConfigError(
                    f"batch item {idx}: blocking for variant "
                    f"{self.variant} must be {regime}-buffered"
                )
            resolved.append(params)
        return resolved

    def plan(
        self,
        items: Sequence[GemmRequest] | Iterable[GemmRequest],
        *,
        blocking: BlockingParams | Sequence[BlockingParams | None] | None = None,
    ) -> SchedulePlan:
        """Validate ``items`` and plan their dispatch (no execution)."""
        items = list(items)
        if not items:
            raise ConfigError("empty batch")
        shapes = validate_items(items)
        return self.plan_shapes(
            shapes, params_list=self.resolve_blocking(shapes, blocking)
        )

    def plan_shapes(
        self,
        shapes: Sequence[tuple[int, int, int]],
        params_list: Sequence[BlockingParams] | None = None,
        policy: str | None = None,
    ) -> SchedulePlan:
        """Plan a batch given only its (m, n, k) shapes.

        Dispatch rule under the default ``"binned"`` policy, per item in
        stream order: a shape already binned goes to its bin's CG —
        unless that CG is ahead of the least-loaded one by more than
        this item's own modeled cost, in which case the bin spills (and
        re-homes) to the least-loaded CG.  A new shape always starts on
        the least-loaded CG.  Affinity keeps the staging-plan cache
        hot; the spill bound keeps a single dominant shape from
        serializing the whole pool.  The ``"round_robin"`` policy
        ignores affinity and load (item ``i`` goes to CG ``i % pool``)
        — the ablation baseline for what binning buys.

        ``params_list`` supplies per-item blocking (defaults to the
        scheduler's own); bins are keyed on (padded shape, params), so
        two items padding identically under *different* blocking do not
        share staging-plan affinity they cannot actually exploit.
        """
        policy = self.policy if policy is None else str(policy).lower()
        if policy not in POLICIES:
            raise ConfigError(
                f"unknown dispatch policy {policy!r} "
                f"(expected one of {', '.join(POLICIES)})"
            )
        loads = [0.0] * self.n_core_groups
        bins: dict[tuple, int] = {}
        assignments: list[int] = []
        item_seconds: list[float] = []
        for idx, (m, n, k) in enumerate(shapes):
            params = params_list[idx] if params_list is not None else self.params
            key = (params.pad_shape(m, n, k), params)
            seconds = self.modeled_item_seconds(m, n, k, params=params)
            if policy == "round_robin":
                home = idx % self.n_core_groups
                bins[key] = home
            else:
                lightest = min(
                    range(self.n_core_groups), key=loads.__getitem__
                )
                home = bins.get(key)
                if home is None or loads[home] - loads[lightest] > seconds:
                    home = lightest
                    bins[key] = home
            loads[home] += seconds
            assignments.append(home)
            item_seconds.append(seconds)
        return SchedulePlan(
            assignments=tuple(assignments),
            item_seconds=tuple(item_seconds),
            cg_seconds=tuple(loads),
            shape_bins=bins,
        )

    # -- execution -----------------------------------------------------

    def run(
        self,
        items: Sequence[GemmRequest] | Iterable[GemmRequest],
        *,
        isolate_failures: bool = True,
        parallel: bool = False,
        engine: str | None = None,
        check: bool | None = None,
        retry_policy: RetryPolicy | None = None,
        blocking: BlockingParams | Sequence[BlockingParams | None] | None = None,
    ) -> ScheduleResult:
        """Execute a batch across the pool.

        With ``isolate_failures`` (the default), an item that fails —
        after the resilience ladder, when one is configured — is
        recorded in ``result.errors``: its slot in ``outputs`` is
        ``None``, its CG's context stays usable, and the rest of the
        batch proceeds.  With ``isolate_failures=False`` the first
        unrecoverable failure propagates (the serial ``dgemm_batch``
        contract).

        With ``parallel=True`` every CG's item queue runs on its own
        worker thread from the scheduler's pool; outputs, modeled
        accounting and span-counter reconciliation are identical to
        serial mode (see the module docstring for the threading model).
        Serial mode (the default) executes items inline in input order.

        Either way, every CG's staged handles are freed when the run
        exits, so each ``MainMemory.used_bytes`` returns to its pre-run
        baseline — failed attempts and retries included.

        ``engine=``/``check=``/``retry_policy=`` override the
        scheduler's configuration *for this run only* — the hook
        :class:`~repro.api.SubmitOptions` maps onto, so a serving batch
        can carry its own engine choice and retry budget without
        rebuilding the pool.

        ``blocking=`` supplies per-item :class:`BlockingParams`: a
        single instance applies to every item; a sequence (``None``
        entries fall back to tuned/default resolution) must match the
        batch length.  Overrides are validated up front with errors
        naming the item index.
        """
        items = list(items)
        if not items:
            raise ConfigError("empty batch")
        if not self._run_guard.acquire(blocking=False):
            raise ConfigError(
                "CGScheduler.run is not reentrant: another run is already "
                "in flight on this scheduler's contexts — overlapping runs "
                "need separate CGScheduler instances"
            )
        try:
            return self._run(
                items, isolate_failures, parallel,
                engine=str(engine).lower() if engine else self.engine,
                check=self.check if check is None else bool(check),
                policy=retry_policy if retry_policy is not None
                else self.retry_policy,
                blocking=blocking,
            )
        finally:
            self._run_guard.release()

    def _run(
        self, items: list, isolate_failures: bool, parallel: bool,
        *, engine: str, check: bool, policy: RetryPolicy | None,
        blocking=None,
    ) -> ScheduleResult:
        shapes = validate_items(items)
        params_list = self.resolve_blocking(shapes, blocking, engine)
        plan = self.plan_shapes(shapes, params_list=params_list)
        outputs: list = [None] * len(items)
        errors: list[ItemError] = []
        reports: list[FaultReport] = []
        unplaced: list[int] = []
        counts = [0] * self.n_core_groups
        failures = [0] * self.n_core_groups
        run_seconds = [0.0] * self.n_core_groups
        quarantined: set[int] = set()
        flops = [0, 0]  # logical, padded
        results_lock = threading.Lock()
        tracer = self.tracer
        # the calling thread's innermost span (session.batch) adopts the
        # worker threads' dispatch subtrees, so the trace stays one tree.
        parent = tracer.current()
        item_traffic: list[ContextStats] = [
            ContextStats.zero() for _ in items
        ]
        tasks = [
            _ItemTask(idx, item, plan.assignments[idx],
                      plan.item_seconds[idx], engine, params_list[idx])
            for idx, item in enumerate(items)
        ]

        def finish(task: _ItemTask, outcome: tuple) -> None:
            """Record one terminal outcome (thread-safe)."""
            kind = outcome[0]
            with results_lock:
                # attributed even on failure: a failed attempt moved
                # real bytes, and bit-exact reconciliation (sum of
                # item_traffic == traffic) must account for them.
                item_traffic[task.idx] = task.traffic
                if kind == _OK:
                    _, out, report = outcome
                    outputs[task.idx] = out
                    if report is not None:
                        reports.append(report)
                    m, n, k = shapes[task.idx]
                    flops[0] += 2 * m * n * k
                    pm, pn, pk = (
                        task.params.pad_shape(m, n, k)
                        if self.pad else (m, n, k)
                    )
                    flops[1] += 2 * pm * pn * pk
                elif kind == _ERROR:
                    _, report, error = outcome
                    if report is not None:
                        reports.append(report)
                    errors.append(error)
                else:  # _UNPLACED
                    _, report, error = outcome
                    unplaced.append(task.idx)
                    reports.append(report)
                    errors.append(error)

        with contextlib.ExitStack() as stack:
            for ctx in self._contexts:
                stack.enter_context(ctx)
            starts = [ctx.stats() for ctx in self._contexts]
            args = (quarantined, run_seconds, counts, failures,
                    isolate_failures, tracer, parent, check, policy)
            if parallel and self.n_core_groups > 1 and len(items) > 1:
                self._execute_parallel(tasks, finish, args)
            else:
                for task in tasks:
                    while True:
                        outcome = self._run_item(task, *args)
                        if outcome[0] != _RESPILL:
                            break
                    finish(task, outcome)
            deltas = [
                ctx.stats().since(start)
                for ctx, start in zip(self._contexts, starts)
            ]
        per_cg = tuple(
            CGTraffic(
                core_group=g,
                items=counts[g],
                failures=failures[g],
                modeled_seconds=run_seconds[g],
                stats=deltas[g],
            )
            for g in range(self.n_core_groups)
        )
        total = ContextStats.zero()
        for delta in deltas:
            total = total.plus(delta)
        errors.sort(key=lambda e: e.index)
        reports.sort(key=lambda r: r.index)
        return ScheduleResult(
            outputs=tuple(outputs),
            errors=tuple(errors),
            per_cg=per_cg,
            plan=plan,
            traffic=total,
            flops=flops[0],
            padded_flops=flops[1],
            fault_reports=tuple(reports),
            quarantined=tuple(sorted(quarantined)),
            unplaced=tuple(sorted(unplaced)),
            item_traffic=tuple(item_traffic),
        )

    def _execute_parallel(self, tasks, finish, args) -> None:
        """Drive per-CG worker threads over per-CG item queues.

        Termination: ``pending`` counts items not yet terminal; it only
        reaches zero when nothing can be respilled anymore, at which
        point every waiting worker wakes up, finds its queue empty, and
        returns.  A worker whose CG was quarantined keeps draining its
        queue — each pop respills to a healthy CG's queue — so no item
        is ever stranded.  An exception escaping the ladder (the
        ``isolate_failures=False`` contract) aborts the run: it is
        captured, every worker drains out, and the first one re-raises
        on the calling thread.
        """
        pool = self.n_core_groups
        cond = threading.Condition()
        queues = [collections.deque() for _ in range(pool)]
        for task in tasks:
            queues[task.home].append(task)
        pending = [len(tasks)]
        aborts: list[BaseException] = []

        def worker(g: int) -> None:
            while True:
                with cond:
                    while not queues[g] and pending[0] > 0 and not aborts:
                        cond.wait()
                    if aborts or not queues[g]:
                        return
                    task = queues[g].popleft()
                try:
                    outcome = self._run_item(task, *args)
                except BaseException as exc:
                    with cond:
                        aborts.append(exc)
                        cond.notify_all()
                    return
                if outcome[0] == _RESPILL:
                    with cond:
                        queues[task.home].append(task)
                        cond.notify_all()
                    continue
                finish(task, outcome)
                with cond:
                    pending[0] -= 1
                    if pending[0] == 0:
                        cond.notify_all()

        futures = [self._worker_pool().submit(worker, g) for g in range(pool)]
        for future in futures:
            future.result()  # surfaces worker-plumbing bugs loudly
        if aborts:
            raise aborts[0]

    def _respill(
        self, idx: int, src: int, quarantined: set, run_seconds: list, tracer,
        parent,
    ) -> int | None:
        """Re-home item ``idx`` from a quarantined CG, or ``None`` if
        no healthy CG remains.  Target selection runs under the
        accounting lock so concurrent respills see a consistent load
        vector."""
        with self._account_lock:
            healthy = [
                g for g in range(self.n_core_groups) if g not in quarantined
            ]
            if not healthy:
                return None
            dst = min(healthy, key=run_seconds.__getitem__)
        with self._resil_lock:
            self.resil.respilled += 1
        # pinned to the source CG's track: each track then has a single
        # writer thread, keeping parallel traces strictly nested per track.
        with tracer.span(
            "resil.respill", cat="resil", parent=parent, track=src + 1,
            item=idx, src=src, dst=dst,
        ):
            pass
        return dst

    def _run_item(
        self,
        task: _ItemTask,
        quarantined: set,
        run_seconds: list,
        counts: list,
        failures: list,
        isolate_failures: bool,
        tracer,
        parent,
        check: bool,
        policy: RetryPolicy | None,
    ) -> tuple:
        """Advance one item through the recovery ladder on its home CG.

        Returns a terminal outcome tuple — ``("ok", output, report)``,
        ``("error", report, item_error)``, ``("unplaced", report,
        item_error)`` — or ``("respill",)`` after re-homing ``task`` to
        a healthy CG (``task.home`` already updated); the caller decides
        whether to continue inline (serial) or re-enqueue the task on
        the new home's worker (parallel).  Retries and engine fallback
        stay on the current home inside this call.

        Accounting discipline: ``counts``/``failures``/``run_seconds``
        slots are only ever touched for ``task.home`` — the calling
        worker owns that CG — while cross-CG state goes through the
        scheduler's locks.  ``parent`` is the calling thread's batch
        span, adopted by spans opened on worker threads.
        ``check``/``policy`` are this run's effective values (the
        scheduler's own, unless :meth:`run` was given overrides).
        """
        injector = self.injector

        while True:
            home = task.home
            if home in quarantined:
                new_home = self._respill(
                    task.idx, home, quarantined, run_seconds, tracer, parent
                )
                if new_home is None:
                    exc = QuarantineError(
                        f"item {task.idx}: all {self.n_core_groups} core "
                        "groups quarantined"
                    )
                    with self._resil_lock:
                        self.resil.exhausted += 1
                    if not isolate_failures:
                        raise exc
                    return _UNPLACED, task.report(False, exc), ItemError(
                        task.idx, home, type(exc).__name__, str(exc)
                    )
                task.home = new_home
                return (_RESPILL,)
            if injector is not None:
                try:
                    injector.fire("cg", cg=home)
                except FaultInjectedError as exc:
                    if task.first_site is None:
                        task.first_site = exc.site
                    with self._resil_lock:
                        self.resil.record_fault(exc.site)
                        self.resil.quarantines += 1
                    with self._account_lock:
                        quarantined.add(home)
                    task.q_here.append(home)
                    with tracer.span(
                        "resil.quarantine", cat="resil", parent=parent,
                        track=home + 1,
                        item=task.idx, cg=home,
                    ):
                        pass
                    continue
            task.attempts += 1
            run_seconds[home] += task.seconds
            # attempt-scoped traffic attribution: this worker is the
            # context's only writer, so the before/after delta is
            # exactly what this attempt moved — charged to the item on
            # both the success and the failure path.
            attempt_start = self._contexts[home].stats()
            try:
                # the dispatch span pins its subtree to track
                # ``home + 1`` (track 0 is the host), so each CG
                # renders as its own row in the Chrome trace.
                with tracer.span(
                    "cg_dispatch", cat="dispatch",
                    meter=context_meter(self._contexts[home]),
                    track=home + 1, parent=parent,
                    item=task.idx, cg=home,
                    modeled_seconds=task.seconds, engine=task.engine,
                ):
                    out = dgemm(
                        task.item.a, task.item.b, task.item.c,
                        alpha=task.item.alpha, beta=task.item.beta,
                        transa=task.item.transa, transb=task.item.transb,
                        variant=self.variant, engine=task.engine,
                        params=task.params,
                        context=self._contexts[home], pad=self.pad,
                        check=check, tracer=tracer,
                        plan_cache=self.plan_cache,
                    )
            except Exception as exc:
                task.traffic = task.traffic.plus(
                    self._contexts[home].stats().since(attempt_start)
                )
                # an aborted attempt can die mid-protocol; wipe the
                # CG's transient device state (CPE LDM/registers,
                # undelivered broadcasts) so neither a retry nor the
                # next item inherits the wreckage.
                self._contexts[home].core_group.reset_transient_state()
                if isinstance(exc, FaultInjectedError):
                    if task.first_site is None:
                        task.first_site = exc.site
                    with self._resil_lock:
                        self.resil.record_fault(exc.site)
                    with tracer.span(
                        "resil.fault", cat="resil", parent=parent,
                        track=home + 1,
                        item=task.idx, cg=home, site=exc.site,
                    ):
                        pass
                if policy is not None and policy.should_retry(exc, task.retries):
                    task.retries += 1
                    pause = policy.backoff_for(task.retries)
                    task.backoff += pause
                    run_seconds[home] += pause
                    with self._resil_lock:
                        self.resil.retries += 1
                        self.resil.backoff_seconds += pause
                    with tracer.span(
                        "resil.retry", cat="resil", parent=parent,
                        track=home + 1,
                        item=task.idx, cg=home,
                        retry=task.retries, backoff_seconds=pause,
                    ):
                        pass
                    continue
                if (
                    self.fallback_engine is not None
                    and task.fallback_used is None
                    and task.engine != self.fallback_engine
                ):
                    task.fallback_used = self.fallback_engine
                    task.engine = self.fallback_engine
                    with self._resil_lock:
                        self.resil.fallbacks += 1
                    with tracer.span(
                        "resil.fallback", cat="resil", parent=parent,
                        track=home + 1,
                        item=task.idx, cg=home, engine=task.engine,
                    ):
                        pass
                    continue
                # ladder exhausted (or no ladder configured)
                counts[home] += 1
                failures[home] += 1
                if task.disturbed:
                    with self._resil_lock:
                        self.resil.exhausted += 1
                if not isolate_failures:
                    raise
                return _ERROR, (
                    task.report(False, exc) if task.disturbed else None
                ), ItemError(task.idx, home, type(exc).__name__, str(exc))
            task.traffic = task.traffic.plus(
                self._contexts[home].stats().since(attempt_start)
            )
            counts[home] += 1
            if not task.disturbed:
                return _OK, out, None
            with self._resil_lock:
                self.resil.recovered += 1
            return _OK, out, task.report(True)

    def metrics_registry(self) -> MetricsRegistry:
        """The scheduler's counters as one sampler-ready registry.

        Namespaces: every pool CG's device counters (``cg0.dma.*``,
        ``cg0.regcomm.*``, ``cg0.memory.*``, ...), the NoC's
        (``noc.*``), the pool-wide plan cache (``plan.cache.*``) and
        the recovery ladder (``resil.*``).  Attach a
        :class:`~repro.obs.series.MetricsSampler` to stream them as
        time series; every source read here is either a plain counter
        read under the GIL or an internally lock-held snapshot, so
        sampling is safe while a parallel run mutates the counters.
        """
        registry = MetricsRegistry.for_processor(self.processor)
        registry.register(
            "plan.cache", lambda: self.plan_cache.stats().as_dict()
        )
        registry.register("resil", self.resil_stats)
        return registry

    def resil_stats(self) -> dict:
        """Cumulative resilience counters (the ``resil.*`` namespace).

        Merges the scheduler's :class:`~repro.resil.RecoveryStats` with
        the attached injector's
        :class:`~repro.resil.InjectionStats` (under ``"injection"``),
        ready for :meth:`repro.obs.MetricsRegistry.register` as a dict
        source.

        Both reads are lock-held snapshots, so metering resilience
        counters while a parallel run mutates them is safe.
        """
        with self._resil_lock:
            data = self.resil.as_dict()
        if self.injector is not None:
            data["injection"] = self.injector.stats_snapshot()
        return data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CGScheduler({self.variant}, engine={self.engine}, "
            f"pool={self.n_core_groups} CGs, pad={self.pad})"
        )
