"""Multi-CG batch scheduling: a device pool over the chip's core groups.

The paper optimizes DGEMM on one core group; the SW26010 has four, each
with its own memory controller and DRAM slice, and a *batched* GEMM
stream (LU trailing updates, convolution layers, served inference
traffic) is exactly the workload that can occupy all of them at once —
the items are independent, so no inter-CG communication is needed at
all.  :class:`CGScheduler` is the runtime layer that turns the
single-CG kernel into a chip-level throughput engine:

- **shape-aware binning** — items of the same (padded) shape are routed
  to the same CG, so that CG's
  :class:`~repro.core.context.ExecutionContext` keeps serving them from
  its LRU staging-plan cache (in-place restage, one host copy per
  operand, zero fresh allocations);
- **least-modeled-load dispatch** — a shape's first appearance lands on
  the CG with the least accumulated modeled time (via
  :class:`~repro.perf.estimator.Estimator`), and a bin spills to the
  least-loaded CG when staying would worsen the makespan by more than
  the item's own cost, re-homing the bin so the cache warms up there;
- **per-item failure isolation** — an item that raises is recorded as
  an :class:`ItemError` and its CG's context stays usable; the other
  items and CGs are unaffected;
- **resilience** — with a :class:`~repro.resil.FaultInjector` and a
  :class:`~repro.resil.RetryPolicy` wired in, a transiently faulted
  item retries from freshly restaged operands (bit-exact recovery,
  deterministic backoff charged in modeled seconds), degrades once to
  the ``fallback_engine`` when retries exhaust, and a whole-CG fault
  (site ``"cg"``) quarantines the group and respills its queue to the
  least-loaded healthy CG; every disturbed item carries a
  :class:`~repro.resil.FaultReport` in ``result.fault_reports``;
- **aggregated accounting** — :class:`ScheduleResult` reports per-CG
  traffic deltas, the modeled makespan vs. the serial single-CG time,
  and the load-balance efficiency over the *healthy* CGs.

Every CG is driven through its own long-lived ``ExecutionContext``,
entered for the duration of one :meth:`CGScheduler.run` — so after a
pool run (raise or no raise) every CG's ``MainMemory.used_bytes`` is
back at its pre-run baseline, the same memory-budget invariant the
single-CG path guarantees.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigError, FaultInjectedError, QuarantineError
from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.core.api import dgemm
from repro.core.batch import BatchItem, validate_items
from repro.core.context import ContextStats, ExecutionContext
from repro.core.params import BlockingParams
from repro.core.variants import get_variant
from repro.multi.processor import SW26010Processor
from repro.obs.registry import context_meter
from repro.obs.tracer import ensure_tracer
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perf.estimator import Estimator
from repro.resil.faults import FaultInjector
from repro.resil.policy import FaultReport, RecoveryStats, RetryPolicy

__all__ = [
    "CGScheduler",
    "CGTraffic",
    "ItemError",
    "SchedulePlan",
    "ScheduleResult",
]


@dataclass(frozen=True)
class SchedulePlan:
    """Where every item goes, and what the model says it will cost.

    Produced by :meth:`CGScheduler.plan` (or :meth:`plan_shapes`, which
    needs only ``(m, n, k)`` tuples — paper-scale planning allocates no
    matrices).  ``cg_seconds`` are modeled times, so the makespan and
    efficiency figures are predictions of the co-scheduled run, not
    wall-clock measurements of the Python simulation.
    """

    #: CG index per item, in item order.
    assignments: tuple[int, ...]
    #: modeled seconds per item (at its padded shape).
    item_seconds: tuple[float, ...]
    #: accumulated modeled seconds per CG.
    cg_seconds: tuple[float, ...]
    #: padded shape -> CG currently homing that shape's bin.
    shape_bins: dict = field(hash=False, compare=False, default_factory=dict)

    @property
    def n_core_groups(self) -> int:
        return len(self.cg_seconds)

    @property
    def serial_seconds(self) -> float:
        """Modeled time of the same batch serialized on one CG."""
        return sum(self.item_seconds)

    @property
    def makespan_seconds(self) -> float:
        """Modeled completion time: the most-loaded CG's total."""
        return max(self.cg_seconds) if self.cg_seconds else 0.0

    @property
    def modeled_speedup(self) -> float:
        """``serial / makespan`` — what the pool buys over one CG."""
        makespan = self.makespan_seconds
        return self.serial_seconds / makespan if makespan else 1.0

    @property
    def load_balance_efficiency(self) -> float:
        """``serial / (n_cgs * makespan)`` — 1.0 is a perfect split."""
        return self.modeled_speedup / self.n_core_groups


@dataclass(frozen=True)
class ItemError:
    """One failed batch item, attributed to its CG (failure isolation)."""

    index: int
    core_group: int
    kind: str
    message: str


@dataclass(frozen=True)
class CGTraffic:
    """One CG's share of a pool run."""

    core_group: int
    items: int
    failures: int
    #: modeled seconds of the work run here (every attempt dispatched
    #: to this CG, plus retry backoff charged against it).
    modeled_seconds: float
    #: staging/DMA/regcomm deltas of this CG's context over the run.
    stats: ContextStats


@dataclass(frozen=True)
class ScheduleResult:
    """Aggregate of a pool run: outputs, failures, per-CG traffic, plan.

    ``traffic`` is the :class:`ContextStats` sum over every CG's
    context delta (one ``plus`` fold, no ad-hoc per-field arithmetic);
    the ``dma_bytes``/``dma_transactions``/``regcomm_bytes`` properties
    mirror :class:`repro.core.batch.BatchResult`, so callers that
    consume a serial batch result can consume a scheduled one
    unchanged.  ``flops`` counts successfully executed items only.

    Timing properties are computed from the *runtime* per-CG seconds in
    ``per_cg`` (which include retry backoff and respilled work), not
    the plan's predictions — the two coincide exactly on a fault-free
    run.  ``load_balance_efficiency`` divides by the healthy CG count:
    a pool that lost a CG to quarantine is not penalized for the work
    the dead CG could not have done.
    """

    #: per-item results in input order; ``None`` where the item failed.
    outputs: tuple
    errors: tuple[ItemError, ...]
    per_cg: tuple[CGTraffic, ...]
    plan: SchedulePlan
    #: summed staging/DMA/regcomm deltas across the pool's contexts.
    traffic: ContextStats
    flops: int
    padded_flops: int = 0
    #: one report per fault-disturbed item (empty on a clean run).
    fault_reports: tuple[FaultReport, ...] = ()
    #: CGs quarantined by whole-CG faults during this run.
    quarantined: tuple[int, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def dma_bytes(self) -> int:
        return self.traffic.dma_bytes

    @property
    def dma_transactions(self) -> int:
        return self.traffic.dma_transactions

    @property
    def regcomm_bytes(self) -> int:
        return self.traffic.regcomm_bytes

    @property
    def n_core_groups(self) -> int:
        return len(self.per_cg)

    @property
    def healthy_core_groups(self) -> int:
        """CGs still accepting work at the end of the run."""
        return self.n_core_groups - len(self.quarantined)

    @property
    def recovered(self) -> tuple[FaultReport, ...]:
        """The fault reports whose items still produced a correct output."""
        return tuple(r for r in self.fault_reports if r.recovered)

    @property
    def makespan_seconds(self) -> float:
        """Runtime makespan: the most-loaded CG's accumulated seconds."""
        if not self.per_cg:
            return self.plan.makespan_seconds
        return max(t.modeled_seconds for t in self.per_cg)

    @property
    def serial_seconds(self) -> float:
        return self.plan.serial_seconds

    @property
    def modeled_speedup(self) -> float:
        makespan = self.makespan_seconds
        return self.serial_seconds / makespan if makespan else 1.0

    @property
    def load_balance_efficiency(self) -> float:
        """``speedup / healthy CGs`` — 1.0 is a perfect healthy split."""
        healthy = self.healthy_core_groups
        return self.modeled_speedup / healthy if healthy else 0.0

    @property
    def padding_overhead(self) -> float:
        """``padded_flops / flops`` — 1.0 means no padding waste."""
        return self.padded_flops / self.flops if self.flops else 1.0

    def __len__(self) -> int:
        return len(self.outputs)


class CGScheduler:
    """Dispatch a stream of :class:`BatchItem`s across a CG pool.

    One scheduler owns an :class:`SW26010Processor` (built here unless
    passed in) and a per-CG :class:`ExecutionContext`.  ``run`` plans
    the batch, executes every item on its assigned CG, and returns a
    :class:`ScheduleResult`; ``plan``/``plan_shapes`` expose the
    dispatch decision and modeled timing without executing anything.

    ``n_core_groups`` may restrict the pool to a prefix of the chip's
    CGs (the 1-CG pool is the serial baseline the scaling experiment
    compares against).  The scheduler is not reentrant: two in-flight
    ``run`` calls would race on the per-CG contexts, and the context's
    own non-reentrancy guard raises loudly.

    Resilience is opt-in: pass ``injector=`` (wired through every CG's
    devices here), ``retry_policy=`` to retry transiently faulted items
    with deterministic modeled backoff, and ``fallback_engine=`` to
    re-run an item once on a different engine after retries exhaust.
    Whole-CG faults (site ``"cg"``, fired at dispatch) quarantine the
    group for the rest of the run and respill its queue to the
    least-loaded healthy CG.  Cumulative counters live in
    :meth:`resil_stats`; per-item outcomes in
    :attr:`ScheduleResult.fault_reports`.
    """

    def __init__(
        self,
        processor: SW26010Processor | None = None,
        *,
        n_core_groups: int | None = None,
        variant: str = "SCHED",
        engine: str = "device",
        params: BlockingParams | None = None,
        spec: SW26010Spec = DEFAULT_SPEC,
        calibration: Calibration = DEFAULT_CALIBRATION,
        pad: bool = True,
        check: bool = False,
        tracer=None,
        injector: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
        fallback_engine: str | None = None,
    ) -> None:
        self.processor = processor or SW26010Processor(spec)
        self.tracer = ensure_tracer(tracer)
        limit = self.processor.N_CORE_GROUPS
        pool = limit if n_core_groups is None else int(n_core_groups)
        if not 1 <= pool <= limit:
            raise ConfigError(
                f"n_core_groups must be in [1, {limit}], got {pool}"
            )
        self.n_core_groups = pool
        self.variant = str(variant).upper()
        self.engine = str(engine).lower()
        self.params = params or get_variant(self.variant).default_params()
        self.pad = pad
        self.check = check
        self.injector = injector
        if injector is not None:
            self.processor.attach_injector(injector)
        self.retry_policy = retry_policy
        self.fallback_engine = (
            str(fallback_engine).lower() if fallback_engine else None
        )
        self.resil = RecoveryStats()
        self._estimator = Estimator(self.processor.spec, calibration)
        self._contexts = [
            ExecutionContext(self.processor.cg(g)) for g in range(pool)
        ]
        #: padded shape -> modeled seconds (estimates are pure functions
        #: of shape, so one batch full of repeats costs one estimate).
        self._seconds_cache: dict[tuple[int, int, int], float] = {}

    # -- planning ------------------------------------------------------

    def modeled_item_seconds(self, m: int, n: int, k: int) -> float:
        """Modeled single-CG seconds for one item (at its padded shape)."""
        key = self.params.pad_shape(m, n, k)
        seconds = self._seconds_cache.get(key)
        if seconds is None:
            seconds = self._estimator.estimate(
                self.variant, *key, params=self.params
            ).seconds
            self._seconds_cache[key] = seconds
        return seconds

    def plan(self, items: Sequence[BatchItem] | Iterable[BatchItem]) -> SchedulePlan:
        """Validate ``items`` and plan their dispatch (no execution)."""
        items = list(items)
        if not items:
            raise ConfigError("empty batch")
        return self.plan_shapes(validate_items(items))

    def plan_shapes(
        self, shapes: Sequence[tuple[int, int, int]]
    ) -> SchedulePlan:
        """Plan a batch given only its (m, n, k) shapes.

        Dispatch rule, per item in stream order: a shape already binned
        goes to its bin's CG — unless that CG is ahead of the
        least-loaded one by more than this item's own modeled cost, in
        which case the bin spills (and re-homes) to the least-loaded CG.
        A new shape always starts on the least-loaded CG.  Affinity
        keeps the staging-plan cache hot; the spill bound keeps a
        single dominant shape from serializing the whole pool.
        """
        loads = [0.0] * self.n_core_groups
        bins: dict[tuple[int, int, int], int] = {}
        assignments: list[int] = []
        item_seconds: list[float] = []
        for m, n, k in shapes:
            key = self.params.pad_shape(m, n, k)
            seconds = self.modeled_item_seconds(m, n, k)
            lightest = min(range(self.n_core_groups), key=loads.__getitem__)
            home = bins.get(key)
            if home is None or loads[home] - loads[lightest] > seconds:
                home = lightest
                bins[key] = home
            loads[home] += seconds
            assignments.append(home)
            item_seconds.append(seconds)
        return SchedulePlan(
            assignments=tuple(assignments),
            item_seconds=tuple(item_seconds),
            cg_seconds=tuple(loads),
            shape_bins=bins,
        )

    # -- execution -----------------------------------------------------

    def run(
        self,
        items: Sequence[BatchItem] | Iterable[BatchItem],
        *,
        isolate_failures: bool = True,
    ) -> ScheduleResult:
        """Execute a batch across the pool.

        With ``isolate_failures`` (the default), an item that fails —
        after the resilience ladder, when one is configured — is
        recorded in ``result.errors``: its slot in ``outputs`` is
        ``None``, its CG's context stays usable, and the rest of the
        batch proceeds.  With ``isolate_failures=False`` the first
        unrecoverable failure propagates (the serial ``dgemm_batch``
        contract).

        Either way, every CG's staged handles are freed when the run
        exits, so each ``MainMemory.used_bytes`` returns to its pre-run
        baseline — failed attempts and retries included.
        """
        items = list(items)
        if not items:
            raise ConfigError("empty batch")
        shapes = validate_items(items)
        plan = self.plan_shapes(shapes)
        outputs: list = [None] * len(items)
        errors: list[ItemError] = []
        reports: list[FaultReport] = []
        counts = [0] * self.n_core_groups
        failures = [0] * self.n_core_groups
        run_seconds = [0.0] * self.n_core_groups
        quarantined: set[int] = set()
        flops = 0
        padded_flops = 0
        with contextlib.ExitStack() as stack:
            for ctx in self._contexts:
                stack.enter_context(ctx)
            starts = [ctx.stats() for ctx in self._contexts]
            tracer = self.tracer
            for idx, item in enumerate(items):
                out, report, error = self._run_item(
                    idx, item, plan.assignments[idx],
                    plan.item_seconds[idx], quarantined, run_seconds,
                    counts, failures, isolate_failures, tracer,
                )
                if report is not None:
                    reports.append(report)
                if error is not None:
                    errors.append(error)
                    continue
                outputs[idx] = out
                m, n, k = shapes[idx]
                flops += 2 * m * n * k
                pm, pn, pk = (
                    self.params.pad_shape(m, n, k) if self.pad else (m, n, k)
                )
                padded_flops += 2 * pm * pn * pk
            deltas = [
                ctx.stats().since(start)
                for ctx, start in zip(self._contexts, starts)
            ]
        per_cg = tuple(
            CGTraffic(
                core_group=g,
                items=counts[g],
                failures=failures[g],
                modeled_seconds=run_seconds[g],
                stats=deltas[g],
            )
            for g in range(self.n_core_groups)
        )
        total = ContextStats.zero()
        for delta in deltas:
            total = total.plus(delta)
        return ScheduleResult(
            outputs=tuple(outputs),
            errors=tuple(errors),
            per_cg=per_cg,
            plan=plan,
            traffic=total,
            flops=flops,
            padded_flops=padded_flops,
            fault_reports=tuple(reports),
            quarantined=tuple(sorted(quarantined)),
        )

    def _respill(
        self, idx: int, src: int, quarantined: set, run_seconds: list, tracer
    ) -> int | None:
        """Re-home item ``idx`` from a quarantined CG, or ``None`` if
        no healthy CG remains."""
        healthy = [
            g for g in range(self.n_core_groups) if g not in quarantined
        ]
        if not healthy:
            return None
        dst = min(healthy, key=run_seconds.__getitem__)
        self.resil.respilled += 1
        with tracer.span(
            "resil.respill", cat="resil", item=idx, src=src, dst=dst
        ):
            pass
        return dst

    def _run_item(
        self,
        idx: int,
        item: BatchItem,
        home: int,
        seconds: float,
        quarantined: set,
        run_seconds: list,
        counts: list,
        failures: list,
        isolate_failures: bool,
        tracer,
    ):
        """Run one item through the recovery ladder.

        Returns ``(output, fault_report, item_error)`` — the report is
        ``None`` unless the item saw a fault, retry, fallback or
        quarantine; exactly one of ``output``/``item_error`` is set.
        Mutates the run-level accounting (``quarantined``,
        ``run_seconds``, ``counts``, ``failures``) and ``self.resil``.
        """
        policy = self.retry_policy
        injector = self.injector
        engine = self.engine
        retries = 0
        attempts = 0
        backoff = 0.0
        first_site: str | None = None
        q_here: list[int] = []
        fallback_used: str | None = None

        def report(recovered: bool, exc: BaseException | None = None):
            return FaultReport(
                index=idx,
                site=first_site,
                attempts=attempts,
                retries=retries,
                backoff_seconds=backoff,
                fallback_engine=fallback_used,
                quarantined_cgs=tuple(q_here),
                core_group=home,
                recovered=recovered,
                error_kind=type(exc).__name__ if exc is not None else None,
                error_message=str(exc) if exc is not None else None,
            )

        while True:
            if home in quarantined:
                new_home = self._respill(
                    idx, home, quarantined, run_seconds, tracer
                )
                if new_home is None:
                    exc = QuarantineError(
                        f"item {idx}: all {self.n_core_groups} core "
                        "groups quarantined"
                    )
                    self.resil.exhausted += 1
                    failures[home] += 1
                    counts[home] += 1
                    if not isolate_failures:
                        raise exc
                    return None, report(False, exc), ItemError(
                        idx, home, type(exc).__name__, str(exc)
                    )
                home = new_home
            if injector is not None:
                try:
                    injector.fire("cg", cg=home)
                except FaultInjectedError as exc:
                    if first_site is None:
                        first_site = exc.site
                    self.resil.record_fault(exc.site)
                    self.resil.quarantines += 1
                    quarantined.add(home)
                    q_here.append(home)
                    with tracer.span(
                        "resil.quarantine", cat="resil", item=idx, cg=home
                    ):
                        pass
                    continue
            attempts += 1
            run_seconds[home] += seconds
            try:
                # the dispatch span pins its subtree to track
                # ``home + 1`` (track 0 is the host), so each CG
                # renders as its own row in the Chrome trace.
                with tracer.span(
                    "cg_dispatch", cat="dispatch",
                    meter=context_meter(self._contexts[home]),
                    track=home + 1, item=idx, cg=home,
                    modeled_seconds=seconds, engine=engine,
                ):
                    out = dgemm(
                        item.a, item.b, item.c,
                        alpha=item.alpha, beta=item.beta,
                        transa=item.transa, transb=item.transb,
                        variant=self.variant, engine=engine,
                        params=self.params,
                        context=self._contexts[home], pad=self.pad,
                        check=self.check, tracer=tracer,
                    )
            except Exception as exc:
                # an aborted attempt can die mid-protocol; wipe the
                # CG's transient device state (CPE LDM/registers,
                # undelivered broadcasts) so neither a retry nor the
                # next item inherits the wreckage.
                self._contexts[home].core_group.reset_transient_state()
                if isinstance(exc, FaultInjectedError):
                    if first_site is None:
                        first_site = exc.site
                    self.resil.record_fault(exc.site)
                    with tracer.span(
                        "resil.fault", cat="resil", item=idx, cg=home,
                        site=exc.site,
                    ):
                        pass
                if policy is not None and policy.should_retry(exc, retries):
                    retries += 1
                    pause = policy.backoff_for(retries)
                    backoff += pause
                    run_seconds[home] += pause
                    self.resil.retries += 1
                    self.resil.backoff_seconds += pause
                    with tracer.span(
                        "resil.retry", cat="resil", item=idx, cg=home,
                        retry=retries, backoff_seconds=pause,
                    ):
                        pass
                    continue
                if (
                    self.fallback_engine is not None
                    and fallback_used is None
                    and engine != self.fallback_engine
                ):
                    fallback_used = self.fallback_engine
                    engine = self.fallback_engine
                    self.resil.fallbacks += 1
                    with tracer.span(
                        "resil.fallback", cat="resil", item=idx, cg=home,
                        engine=engine,
                    ):
                        pass
                    continue
                # ladder exhausted (or no ladder configured)
                counts[home] += 1
                failures[home] += 1
                disturbed = bool(
                    first_site or retries or fallback_used or q_here
                )
                if disturbed:
                    self.resil.exhausted += 1
                if not isolate_failures:
                    raise
                return None, report(False, exc) if disturbed else None, (
                    ItemError(idx, home, type(exc).__name__, str(exc))
                )
            counts[home] += 1
            disturbed = bool(first_site or retries or fallback_used or q_here)
            if not disturbed:
                return out, None, None
            self.resil.recovered += 1
            return out, report(True), None

    def resil_stats(self) -> dict:
        """Cumulative resilience counters (the ``resil.*`` namespace).

        Merges the scheduler's :class:`~repro.resil.RecoveryStats` with
        the attached injector's
        :class:`~repro.resil.InjectionStats` (under ``"injection"``),
        ready for :meth:`repro.obs.MetricsRegistry.register` as a dict
        source.
        """
        data = self.resil.as_dict()
        if self.injector is not None:
            data["injection"] = self.injector.stats.as_dict()
        return data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CGScheduler({self.variant}, engine={self.engine}, "
            f"pool={self.n_core_groups} CGs, pad={self.pad})"
        )
