"""Multi-CG batch scheduling: a device pool over the chip's core groups.

The paper optimizes DGEMM on one core group; the SW26010 has four, each
with its own memory controller and DRAM slice, and a *batched* GEMM
stream (LU trailing updates, convolution layers, served inference
traffic) is exactly the workload that can occupy all of them at once —
the items are independent, so no inter-CG communication is needed at
all.  :class:`CGScheduler` is the runtime layer that turns the
single-CG kernel into a chip-level throughput engine:

- **shape-aware binning** — items of the same (padded) shape are routed
  to the same CG, so that CG's
  :class:`~repro.core.context.ExecutionContext` keeps serving them from
  its LRU staging-plan cache (in-place restage, one host copy per
  operand, zero fresh allocations);
- **least-modeled-load dispatch** — a shape's first appearance lands on
  the CG with the least accumulated modeled time (via
  :class:`~repro.perf.estimator.Estimator`), and a bin spills to the
  least-loaded CG when staying would worsen the makespan by more than
  the item's own cost, re-homing the bin so the cache warms up there;
- **per-item failure isolation** — an item that raises is recorded as
  an :class:`ItemError` and its CG's context stays usable; the other
  items and CGs are unaffected;
- **aggregated accounting** — :class:`ScheduleResult` reports per-CG
  traffic deltas, the modeled makespan vs. the serial single-CG time,
  and the load-balance efficiency.

Every CG is driven through its own long-lived ``ExecutionContext``,
entered for the duration of one :meth:`CGScheduler.run` — so after a
pool run (raise or no raise) every CG's ``MainMemory.used_bytes`` is
back at its pre-run baseline, the same memory-budget invariant the
single-CG path guarantees.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.core.api import dgemm
from repro.core.batch import BatchItem, validate_items
from repro.core.context import ContextStats, ExecutionContext
from repro.core.params import BlockingParams
from repro.core.variants import get_variant
from repro.multi.processor import SW26010Processor
from repro.obs.registry import context_meter
from repro.obs.tracer import ensure_tracer
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perf.estimator import Estimator

__all__ = [
    "CGScheduler",
    "CGTraffic",
    "ItemError",
    "SchedulePlan",
    "ScheduleResult",
]


@dataclass(frozen=True)
class SchedulePlan:
    """Where every item goes, and what the model says it will cost.

    Produced by :meth:`CGScheduler.plan` (or :meth:`plan_shapes`, which
    needs only ``(m, n, k)`` tuples — paper-scale planning allocates no
    matrices).  ``cg_seconds`` are modeled times, so the makespan and
    efficiency figures are predictions of the co-scheduled run, not
    wall-clock measurements of the Python simulation.
    """

    #: CG index per item, in item order.
    assignments: tuple[int, ...]
    #: modeled seconds per item (at its padded shape).
    item_seconds: tuple[float, ...]
    #: accumulated modeled seconds per CG.
    cg_seconds: tuple[float, ...]
    #: padded shape -> CG currently homing that shape's bin.
    shape_bins: dict = field(hash=False, compare=False, default_factory=dict)

    @property
    def n_core_groups(self) -> int:
        return len(self.cg_seconds)

    @property
    def serial_seconds(self) -> float:
        """Modeled time of the same batch serialized on one CG."""
        return sum(self.item_seconds)

    @property
    def makespan_seconds(self) -> float:
        """Modeled completion time: the most-loaded CG's total."""
        return max(self.cg_seconds) if self.cg_seconds else 0.0

    @property
    def modeled_speedup(self) -> float:
        """``serial / makespan`` — what the pool buys over one CG."""
        makespan = self.makespan_seconds
        return self.serial_seconds / makespan if makespan else 1.0

    @property
    def load_balance_efficiency(self) -> float:
        """``serial / (n_cgs * makespan)`` — 1.0 is a perfect split."""
        return self.modeled_speedup / self.n_core_groups


@dataclass(frozen=True)
class ItemError:
    """One failed batch item, attributed to its CG (failure isolation)."""

    index: int
    core_group: int
    kind: str
    message: str


@dataclass(frozen=True)
class CGTraffic:
    """One CG's share of a pool run."""

    core_group: int
    items: int
    failures: int
    #: modeled seconds of the work dispatched here (includes failed items).
    modeled_seconds: float
    #: staging/DMA/regcomm deltas of this CG's context over the run.
    stats: ContextStats


@dataclass(frozen=True)
class ScheduleResult:
    """Aggregate of a pool run: outputs, failures, per-CG traffic, plan.

    ``traffic`` is the :class:`ContextStats` sum over every CG's
    context delta (one ``plus`` fold, no ad-hoc per-field arithmetic);
    the ``dma_bytes``/``dma_transactions``/``regcomm_bytes`` properties
    mirror :class:`repro.core.batch.BatchResult`, so callers that
    consume a serial batch result can consume a scheduled one
    unchanged.  ``flops`` counts successfully executed items only.
    """

    #: per-item results in input order; ``None`` where the item failed.
    outputs: tuple
    errors: tuple[ItemError, ...]
    per_cg: tuple[CGTraffic, ...]
    plan: SchedulePlan
    #: summed staging/DMA/regcomm deltas across the pool's contexts.
    traffic: ContextStats
    flops: int
    padded_flops: int = 0

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def dma_bytes(self) -> int:
        return self.traffic.dma_bytes

    @property
    def dma_transactions(self) -> int:
        return self.traffic.dma_transactions

    @property
    def regcomm_bytes(self) -> int:
        return self.traffic.regcomm_bytes

    @property
    def n_core_groups(self) -> int:
        return len(self.per_cg)

    @property
    def makespan_seconds(self) -> float:
        return self.plan.makespan_seconds

    @property
    def serial_seconds(self) -> float:
        return self.plan.serial_seconds

    @property
    def modeled_speedup(self) -> float:
        return self.plan.modeled_speedup

    @property
    def load_balance_efficiency(self) -> float:
        return self.plan.load_balance_efficiency

    @property
    def padding_overhead(self) -> float:
        """``padded_flops / flops`` — 1.0 means no padding waste."""
        return self.padded_flops / self.flops if self.flops else 1.0

    def __len__(self) -> int:
        return len(self.outputs)


class CGScheduler:
    """Dispatch a stream of :class:`BatchItem`s across a CG pool.

    One scheduler owns an :class:`SW26010Processor` (built here unless
    passed in) and a per-CG :class:`ExecutionContext`.  ``run`` plans
    the batch, executes every item on its assigned CG, and returns a
    :class:`ScheduleResult`; ``plan``/``plan_shapes`` expose the
    dispatch decision and modeled timing without executing anything.

    ``n_core_groups`` may restrict the pool to a prefix of the chip's
    CGs (the 1-CG pool is the serial baseline the scaling experiment
    compares against).  The scheduler is not reentrant: two in-flight
    ``run`` calls would race on the per-CG contexts, and the context's
    own non-reentrancy guard raises loudly.
    """

    def __init__(
        self,
        processor: SW26010Processor | None = None,
        *,
        n_core_groups: int | None = None,
        variant: str = "SCHED",
        engine: str = "device",
        params: BlockingParams | None = None,
        spec: SW26010Spec = DEFAULT_SPEC,
        calibration: Calibration = DEFAULT_CALIBRATION,
        pad: bool = True,
        check: bool = False,
        tracer=None,
    ) -> None:
        self.processor = processor or SW26010Processor(spec)
        self.tracer = ensure_tracer(tracer)
        limit = self.processor.N_CORE_GROUPS
        pool = limit if n_core_groups is None else int(n_core_groups)
        if not 1 <= pool <= limit:
            raise ConfigError(
                f"n_core_groups must be in [1, {limit}], got {pool}"
            )
        self.n_core_groups = pool
        self.variant = str(variant).upper()
        self.engine = str(engine).lower()
        self.params = params or get_variant(self.variant).default_params()
        self.pad = pad
        self.check = check
        self._estimator = Estimator(self.processor.spec, calibration)
        self._contexts = [
            ExecutionContext(self.processor.cg(g)) for g in range(pool)
        ]
        #: padded shape -> modeled seconds (estimates are pure functions
        #: of shape, so one batch full of repeats costs one estimate).
        self._seconds_cache: dict[tuple[int, int, int], float] = {}

    # -- planning ------------------------------------------------------

    def modeled_item_seconds(self, m: int, n: int, k: int) -> float:
        """Modeled single-CG seconds for one item (at its padded shape)."""
        key = self.params.pad_shape(m, n, k)
        seconds = self._seconds_cache.get(key)
        if seconds is None:
            seconds = self._estimator.estimate(
                self.variant, *key, params=self.params
            ).seconds
            self._seconds_cache[key] = seconds
        return seconds

    def plan(self, items: Sequence[BatchItem] | Iterable[BatchItem]) -> SchedulePlan:
        """Validate ``items`` and plan their dispatch (no execution)."""
        items = list(items)
        if not items:
            raise ConfigError("empty batch")
        return self.plan_shapes(validate_items(items))

    def plan_shapes(
        self, shapes: Sequence[tuple[int, int, int]]
    ) -> SchedulePlan:
        """Plan a batch given only its (m, n, k) shapes.

        Dispatch rule, per item in stream order: a shape already binned
        goes to its bin's CG — unless that CG is ahead of the
        least-loaded one by more than this item's own modeled cost, in
        which case the bin spills (and re-homes) to the least-loaded CG.
        A new shape always starts on the least-loaded CG.  Affinity
        keeps the staging-plan cache hot; the spill bound keeps a
        single dominant shape from serializing the whole pool.
        """
        loads = [0.0] * self.n_core_groups
        bins: dict[tuple[int, int, int], int] = {}
        assignments: list[int] = []
        item_seconds: list[float] = []
        for m, n, k in shapes:
            key = self.params.pad_shape(m, n, k)
            seconds = self.modeled_item_seconds(m, n, k)
            lightest = min(range(self.n_core_groups), key=loads.__getitem__)
            home = bins.get(key)
            if home is None or loads[home] - loads[lightest] > seconds:
                home = lightest
                bins[key] = home
            loads[home] += seconds
            assignments.append(home)
            item_seconds.append(seconds)
        return SchedulePlan(
            assignments=tuple(assignments),
            item_seconds=tuple(item_seconds),
            cg_seconds=tuple(loads),
            shape_bins=bins,
        )

    # -- execution -----------------------------------------------------

    def run(
        self,
        items: Sequence[BatchItem] | Iterable[BatchItem],
        *,
        isolate_failures: bool = True,
    ) -> ScheduleResult:
        """Execute a batch across the pool.

        With ``isolate_failures`` (the default), an item that raises is
        recorded in ``result.errors`` — its slot in ``outputs`` is
        ``None``, its CG's context stays usable, and the rest of the
        batch proceeds.  With ``isolate_failures=False`` the first
        failure propagates (the serial ``dgemm_batch`` contract).

        Either way, every CG's staged handles are freed when the run
        exits, so each ``MainMemory.used_bytes`` returns to its pre-run
        baseline.
        """
        items = list(items)
        if not items:
            raise ConfigError("empty batch")
        shapes = validate_items(items)
        plan = self.plan_shapes(shapes)
        outputs: list = [None] * len(items)
        errors: list[ItemError] = []
        counts = [0] * self.n_core_groups
        failures = [0] * self.n_core_groups
        flops = 0
        padded_flops = 0
        with contextlib.ExitStack() as stack:
            for ctx in self._contexts:
                stack.enter_context(ctx)
            starts = [ctx.stats() for ctx in self._contexts]
            tracer = self.tracer
            for idx, item in enumerate(items):
                home = plan.assignments[idx]
                counts[home] += 1
                try:
                    # the dispatch span pins its subtree to track
                    # ``home + 1`` (track 0 is the host), so each CG
                    # renders as its own row in the Chrome trace.
                    with tracer.span(
                        "cg_dispatch", cat="dispatch",
                        meter=context_meter(self._contexts[home]),
                        track=home + 1, item=idx, cg=home,
                        modeled_seconds=plan.item_seconds[idx],
                    ):
                        outputs[idx] = dgemm(
                            item.a, item.b, item.c,
                            alpha=item.alpha, beta=item.beta,
                            transa=item.transa, transb=item.transb,
                            variant=self.variant, engine=self.engine,
                            params=self.params,
                            context=self._contexts[home], pad=self.pad,
                            check=self.check, tracer=tracer,
                        )
                except Exception as exc:
                    if not isolate_failures:
                        raise
                    failures[home] += 1
                    errors.append(
                        ItemError(idx, home, type(exc).__name__, str(exc))
                    )
                    continue
                m, n, k = shapes[idx]
                flops += 2 * m * n * k
                pm, pn, pk = (
                    self.params.pad_shape(m, n, k) if self.pad else (m, n, k)
                )
                padded_flops += 2 * pm * pn * pk
            deltas = [
                ctx.stats().since(start)
                for ctx, start in zip(self._contexts, starts)
            ]
        per_cg = tuple(
            CGTraffic(
                core_group=g,
                items=counts[g],
                failures=failures[g],
                modeled_seconds=plan.cg_seconds[g],
                stats=deltas[g],
            )
            for g in range(self.n_core_groups)
        )
        total = ContextStats.zero()
        for delta in deltas:
            total = total.plus(delta)
        return ScheduleResult(
            outputs=tuple(outputs),
            errors=tuple(errors),
            per_cg=per_cg,
            plan=plan,
            traffic=total,
            flops=flops,
            padded_flops=padded_flops,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CGScheduler({self.variant}, engine={self.engine}, "
            f"pool={self.n_core_groups} CGs, pad={self.pad})"
        )
