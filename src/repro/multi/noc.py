"""The network-on-chip between the four core groups.

Functionally the NoC copies matrices between CG memories; for timing it
charges a per-message latency plus bytes over a per-link bandwidth.
A broadcast from one CG to the other three is modelled as three
point-to-point copies that share the source's egress link (serialized),
which is the conservative reading of Figure 1's ring-like topology.

Calibration note: the paper gives no NoC numbers.  ``link_bandwidth``
defaults to 16 GB/s with a 2 us message latency — the right order of
magnitude for on-chip interconnects of the era — and is an explicit
assumption documented in DESIGN.md; the multi-CG experiment reports how
the scaling conclusion depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, MeshError
from repro.arch.memory import MatrixHandle
from repro.utils.stats import StatsProtocol

__all__ = ["NoCStats", "NoC"]


@dataclass
class NoCStats(StatsProtocol):
    """Cumulative NoC transfer counters."""

    messages: int = 0
    bytes_moved: int = 0
    seconds: float = 0.0


class NoC:
    """Inter-CG transport."""

    def __init__(
        self,
        n_nodes: int = 4,
        link_bandwidth: float = 16e9,
        message_latency: float = 2e-6,
    ) -> None:
        if n_nodes < 1:
            raise ConfigError("NoC needs at least one node")
        if link_bandwidth <= 0 or message_latency < 0:
            raise ConfigError("bad NoC timing parameters")
        self.n_nodes = n_nodes
        self.link_bandwidth = link_bandwidth
        self.message_latency = message_latency
        self.stats = NoCStats()

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise MeshError(f"CG index {node} outside [0, {self.n_nodes})")

    def transfer_seconds(self, nbytes: int) -> float:
        """Cost of one point-to-point copy."""
        if nbytes < 0:
            raise ConfigError("negative transfer size")
        return self.message_latency + nbytes / self.link_bandwidth

    def copy(self, src_memory, dst_memory, handle: MatrixHandle | str,
             src: int, dst: int, dst_name: str | None = None) -> float:
        """Functionally copy a matrix between CG memories; return cost."""
        self._check_node(src)
        self._check_node(dst)
        array = src_memory.read(handle)
        name = dst_name or (handle if isinstance(handle, str) else handle.name)
        dst_memory.store(name, array)
        cost = self.transfer_seconds(array.nbytes)
        self.stats.messages += 1
        self.stats.bytes_moved += array.nbytes
        self.stats.seconds += cost
        return cost

    def broadcast_seconds(self, nbytes: int) -> float:
        """Source-egress-serialized broadcast to the other CGs."""
        return (self.n_nodes - 1) * self.transfer_seconds(nbytes)
