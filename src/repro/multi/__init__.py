"""Full-processor extension: DGEMM across the four core groups.

The paper optimizes one CG; the SW26010 has four, connected by a
network-on-chip (NoC), each with its own memory controller and 8 GB
DRAM slice (Sec II, Figure 1).  HPL runs DGEMM across all four, so this
subpackage extends the reproduction to the full chip:

- :mod:`repro.multi.noc` — a functional+costed NoC (inter-CG copies);
- :mod:`repro.multi.processor` — the 4-CG SW26010 device;
- :mod:`repro.multi.dgemm4` — block-column-parallel DGEMM: C and B are
  partitioned by columns across CGs, A is broadcast over the NoC, each
  CG runs the paper's single-CG SCHED kernel on its panel;
- :mod:`repro.multi.scheduler` — :class:`CGScheduler`, the device pool
  that dispatches independent batch items across the CGs (shape-aware
  binning + least-modeled-load), each CG behind its own long-lived
  :class:`~repro.core.context.ExecutionContext`.

The NoC bandwidth is **not** published in the paper; the model uses a
documented assumption (16 GB/s per link) and the scaling experiment
reports sensitivity to it.
"""

from repro.multi.noc import NoC, NoCStats
from repro.multi.processor import SW26010Processor
from repro.multi.dgemm4 import MultiCGEstimate, dgemm_multi_cg, estimate_multi_cg
from repro.multi.scheduler import (
    CGScheduler,
    CGTraffic,
    ItemError,
    SchedulePlan,
    ScheduleResult,
)

__all__ = [
    "NoC",
    "NoCStats",
    "SW26010Processor",
    "dgemm_multi_cg",
    "estimate_multi_cg",
    "MultiCGEstimate",
    "CGScheduler",
    "CGTraffic",
    "ItemError",
    "SchedulePlan",
    "ScheduleResult",
]
