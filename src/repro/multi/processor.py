"""The full SW26010: four core groups on a NoC (Figure 1)."""

from __future__ import annotations

from repro.errors import ConfigError, MeshError
from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.arch.core_group import CoreGroup
from repro.multi.noc import NoC

__all__ = ["SW26010Processor"]


class SW26010Processor:
    """Four CGs, each with its own memory controller and DRAM slice."""

    N_CORE_GROUPS = 4

    def __init__(self, spec: SW26010Spec = DEFAULT_SPEC, noc: NoC | None = None) -> None:
        self.spec = spec
        self.noc = noc or NoC(n_nodes=self.N_CORE_GROUPS)
        if self.noc.n_nodes != self.N_CORE_GROUPS:
            raise ConfigError(
                f"SW26010 has {self.N_CORE_GROUPS} CGs, NoC models {self.noc.n_nodes}"
            )
        self._cgs = [CoreGroup(spec) for _ in range(self.N_CORE_GROUPS)]

    def attach_injector(self, injector) -> None:
        """Wire a :class:`~repro.resil.FaultInjector` through every CG.

        Each core group's fault sites fire tagged with its index, so
        one injector can target the whole chip or, via per-spec ``cg``
        filters, a single group.  Pass ``None`` to detach everywhere.
        """
        for index, cg in enumerate(self._cgs):
            cg.attach_injector(injector, cg_index=index)

    def cg(self, index: int) -> CoreGroup:
        if not 0 <= index < self.N_CORE_GROUPS:
            raise MeshError(f"CG index {index} outside [0, {self.N_CORE_GROUPS})")
        return self._cgs[index]

    @property
    def core_groups(self) -> list[CoreGroup]:
        return list(self._cgs)

    @property
    def peak_flops(self) -> float:
        """Whole-chip peak: 4 x 742.4 = 2969.6 Gflop/s (CPE clusters)."""
        return self.N_CORE_GROUPS * self.spec.peak_flops

    def total_dma_bytes(self) -> int:
        return sum(cg.dma.stats.bytes_total for cg in self._cgs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SW26010Processor(4 CGs, {self.peak_flops / 1e12:.2f} Tflop/s peak)"
