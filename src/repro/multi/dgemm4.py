"""Block-column-parallel DGEMM across the four core groups.

Decomposition (the standard HPL-style panel split):

- C and B are partitioned by block columns: CG ``g`` owns columns
  ``[g * n/4, (g+1) * n/4)``;
- A is needed by every CG; it starts in CG 0's memory and is broadcast
  over the NoC;
- each CG then runs the paper's single-CG algorithm on its
  ``m x (n/4) x k`` panel — no inter-CG communication during compute.

Functional execution runs the four CGs' panels through the device model
(sequentially in Python; they are independent), writes each panel back,
and must match the reference exactly.  The timing model is
``NoC broadcast + max over CGs of the single-CG estimate``.

The keyword surface matches the scalar :func:`repro.core.api.dgemm`:
``alpha``/``beta``/``transa``/``transb``/``pad``/``check`` behave the
same way (``pad=True`` zero-pads ``m``/``k`` to the CG block factors
and ``n`` to a whole number of block-multiple panels).  Because this
entry point drives four devices, the scalar ``context=`` becomes
``contexts=``: one :class:`ExecutionContext` per CG, for callers that
keep panel staging warm across calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ConfigError, UnsupportedShapeError
from repro.api import apply_trans as _apply_trans
from repro.api import resolve_legacy_kwargs
from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.core.api import dgemm
from repro.core.context import ExecutionContext
from repro.core.params import BlockingParams
from repro.core.reference import reference_dgemm
from repro.multi.noc import NoC
from repro.multi.processor import SW26010Processor
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perf.estimator import Estimator

__all__ = ["dgemm_multi_cg", "MultiCGEstimate", "estimate_multi_cg"]


def dgemm_multi_cg(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    alpha: float = 1.0,
    beta: float = 0.0,
    transa: str = "N",
    transb: str = "N",
    variant: str = "SCHED",
    params: BlockingParams | None = None,
    spec: SW26010Spec = DEFAULT_SPEC,
    processor: SW26010Processor | None = None,
    n_core_groups: int | None = None,
    contexts: "list[ExecutionContext] | None" = None,
    pad: bool = False,
    check: bool = False,
    **legacy: Any,
) -> np.ndarray:
    """Compute ``alpha*a@b + beta*c`` across all four CGs (functional).

    Without ``pad``, ``n`` must split evenly into four panels that are
    multiples of the CG block factor ``b_n`` and ``m``/``k`` must be
    block-factor multiples; with ``pad=True`` every dimension is
    zero-padded up (``n`` to a whole number of block-multiple panels)
    and the result is truncated back, as in the single-CG entry point.

    ``n_core_groups=`` restricts the decomposition to the first N CGs
    (default: all of them), matching the other entry points'
    harmonized keyword surface; the legacy spellings
    (``ncgs``/``num_core_groups``/``trans``/...) are accepted with a
    :class:`DeprecationWarning`.
    """
    if legacy:
        resolved = resolve_legacy_kwargs("dgemm_multi_cg", legacy)
        if "n_core_groups" in resolved:
            if n_core_groups is not None:
                raise ConfigError(
                    "dgemm_multi_cg(): n_core_groups given both directly "
                    "and through a legacy spelling"
                )
            n_core_groups = resolved.pop("n_core_groups")
        transa = resolved.get("transa", transa)
        transb = resolved.get("transb", transb)
    proc = processor or SW26010Processor(spec)
    params = params or BlockingParams.small(double_buffered=True)
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise UnsupportedShapeError("dgemm operates on 2-D matrices")
    a = np.asfortranarray(_apply_trans("transa", transa, a))
    b = np.asfortranarray(_apply_trans("transb", transb, b))
    m, k = a.shape
    k2, n = b.shape
    if k2 != k:
        raise UnsupportedShapeError(f"A is {a.shape} but B is {b.shape}")
    if c is None:
        if beta != 0.0:
            raise UnsupportedShapeError("beta != 0 requires an input C")
        c = np.zeros((m, n), dtype=np.float64, order="F")
    c = np.asfortranarray(c, dtype=np.float64)
    if c.shape != (m, n):
        raise UnsupportedShapeError(f"C is {c.shape}, expected {(m, n)}")
    n_cgs = n_core_groups if n_core_groups is not None else proc.N_CORE_GROUPS
    if not 1 <= n_cgs <= proc.N_CORE_GROUPS:
        raise ConfigError(
            f"n_core_groups must be in [1, {proc.N_CORE_GROUPS}], got {n_cgs}"
        )
    if contexts is not None and len(contexts) != n_cgs:
        raise ConfigError(
            f"contexts must supply one ExecutionContext per CG "
            f"({n_cgs}), got {len(contexts)}"
        )

    pm, pn, pk = m, n, k
    if pad:
        pm, _, pk = params.pad_shape(m, 1, k)
        panel_block = n_cgs * params.b_n
        pn = -(-n // panel_block) * panel_block
        if (pm, pn, pk) != (m, n, k):
            ap = np.zeros((pm, pk), dtype=np.float64, order="F")
            ap[:m, :k] = a
            bp = np.zeros((pk, pn), dtype=np.float64, order="F")
            bp[:k, :n] = b
            cp = np.zeros((pm, pn), dtype=np.float64, order="F")
            cp[:m, :n] = c
            a, b_eff, c_eff = ap, bp, cp
        else:
            b_eff, c_eff = b, c
    else:
        b_eff, c_eff = b, c
    panel = pn // n_cgs
    if pn % n_cgs != 0 or panel % params.b_n != 0:
        raise UnsupportedShapeError(
            f"n={pn} must split into {n_cgs} panels that are multiples of "
            f"bN={params.b_n} (pass pad=True to zero-pad)"
        )

    # stage A in CG 0's memory and broadcast it over the NoC; the
    # broadcast copies are scratch operands of this call, so they are
    # freed before returning (raise or no raise) — a shared processor's
    # byte budget must come back to its baseline.
    proc.cg(0).memory.store("mc.A", a)
    try:
        for g in range(1, n_cgs):
            proc.noc.copy(
                proc.cg(0).memory, proc.cg(g).memory, "mc.A", src=0, dst=g
            )
        out = np.empty_like(c_eff)
        for g in range(n_cgs):
            cols = slice(g * panel, (g + 1) * panel)
            out[:, cols] = dgemm(
                a, b_eff[:, cols], c_eff[:, cols],
                alpha=alpha, beta=beta, variant=variant, params=params,
                core_group=None if contexts is not None else proc.cg(g),
                context=None if contexts is None else contexts[g],
            )
    finally:
        for g in range(n_cgs):
            try:
                proc.cg(g).memory.free("mc.A")
            except KeyError:
                pass
    result = np.array(out[:m, :n], order="F", copy=True)
    if check:
        expected = reference_dgemm(alpha, a[:m, :k], b_eff[:k, :n], beta, c)
        if not np.allclose(result, expected, rtol=1e-12, atol=1e-9):
            worst = float(np.max(np.abs(result - expected)))
            raise AssertionError(
                f"multi-CG {variant} result deviates from reference "
                f"(max abs err {worst:.3e})"
            )
    return result


@dataclass(frozen=True)
class MultiCGEstimate:
    """Timing prediction for the 4-CG decomposition."""

    m: int
    n: int
    k: int
    broadcast_seconds: float
    panel_seconds: float
    single_cg_seconds: float

    @property
    def seconds(self) -> float:
        return self.broadcast_seconds + self.panel_seconds

    @property
    def gflops(self) -> float:
        return 2 * self.m * self.n * self.k / self.seconds / 1e9

    @property
    def speedup_vs_single_cg(self) -> float:
        return self.single_cg_seconds / self.seconds

    @property
    def parallel_efficiency(self) -> float:
        return self.speedup_vs_single_cg / 4.0


def estimate_multi_cg(
    m: int,
    n: int,
    k: int,
    variant: str = "SCHED",
    params: BlockingParams | None = None,
    spec: SW26010Spec = DEFAULT_SPEC,
    calibration: Calibration = DEFAULT_CALIBRATION,
    noc: NoC | None = None,
) -> MultiCGEstimate:
    """Model the 4-CG run at paper scale."""
    noc = noc or NoC()
    estimator = Estimator(spec, calibration)
    panel = n // 4
    if n % 4 != 0:
        raise UnsupportedShapeError(f"n={n} does not split across 4 CGs")
    panel_est = estimator.estimate(variant, m, panel, k, params=params)
    single = estimator.estimate(variant, m, n, k, params=params)
    return MultiCGEstimate(
        m=m, n=n, k=k,
        broadcast_seconds=noc.broadcast_seconds(m * k * 8),
        panel_seconds=panel_est.seconds,
        single_cg_seconds=single.seconds,
    )
