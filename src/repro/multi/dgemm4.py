"""Block-column-parallel DGEMM across the four core groups.

Decomposition (the standard HPL-style panel split):

- C and B are partitioned by block columns: CG ``g`` owns columns
  ``[g * n/4, (g+1) * n/4)``;
- A is needed by every CG; it starts in CG 0's memory and is broadcast
  over the NoC;
- each CG then runs the paper's single-CG algorithm on its
  ``m x (n/4) x k`` panel — no inter-CG communication during compute.

Functional execution runs the four CGs' panels through the device model
(sequentially in Python; they are independent), writes each panel back,
and must match the reference exactly.  The timing model is
``NoC broadcast + max over CGs of the single-CG estimate``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import UnsupportedShapeError
from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.core.api import dgemm
from repro.core.params import BlockingParams
from repro.multi.noc import NoC
from repro.multi.processor import SW26010Processor
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perf.estimator import Estimator

__all__ = ["dgemm_multi_cg", "MultiCGEstimate", "estimate_multi_cg"]


def dgemm_multi_cg(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    alpha: float = 1.0,
    beta: float = 0.0,
    variant: str = "SCHED",
    params: BlockingParams | None = None,
    processor: SW26010Processor | None = None,
) -> np.ndarray:
    """Compute ``alpha*a@b + beta*c`` across all four CGs (functional).

    ``n`` must split evenly into four panels that are multiples of the
    CG block factor ``b_n`` (use the single-CG ``dgemm(pad=True)`` for
    awkward shapes).
    """
    proc = processor or SW26010Processor()
    params = params or BlockingParams.small(double_buffered=True)
    a = np.asfortranarray(a, dtype=np.float64)
    b = np.asfortranarray(b, dtype=np.float64)
    m, k = a.shape
    k2, n = b.shape
    if k2 != k:
        raise UnsupportedShapeError(f"A is {a.shape} but B is {b.shape}")
    if c is None:
        if beta != 0.0:
            raise UnsupportedShapeError("beta != 0 requires an input C")
        c = np.zeros((m, n), dtype=np.float64, order="F")
    c = np.asfortranarray(c, dtype=np.float64)
    if c.shape != (m, n):
        raise UnsupportedShapeError(f"C is {c.shape}, expected {(m, n)}")
    n_cgs = proc.N_CORE_GROUPS
    panel = n // n_cgs
    if n % n_cgs != 0 or panel % params.b_n != 0:
        raise UnsupportedShapeError(
            f"n={n} must split into {n_cgs} panels that are multiples of "
            f"bN={params.b_n}"
        )

    # stage A in CG 0's memory and broadcast it over the NoC
    proc.cg(0).memory.store("mc.A", a)
    for g in range(1, n_cgs):
        proc.noc.copy(proc.cg(0).memory, proc.cg(g).memory, "mc.A", src=0, dst=g)

    out = np.empty_like(c)
    for g in range(n_cgs):
        cols = slice(g * panel, (g + 1) * panel)
        out[:, cols] = dgemm(
            a, b[:, cols], c[:, cols],
            alpha=alpha, beta=beta, variant=variant, params=params,
            core_group=proc.cg(g),
        )
    return out


@dataclass(frozen=True)
class MultiCGEstimate:
    """Timing prediction for the 4-CG decomposition."""

    m: int
    n: int
    k: int
    broadcast_seconds: float
    panel_seconds: float
    single_cg_seconds: float

    @property
    def seconds(self) -> float:
        return self.broadcast_seconds + self.panel_seconds

    @property
    def gflops(self) -> float:
        return 2 * self.m * self.n * self.k / self.seconds / 1e9

    @property
    def speedup_vs_single_cg(self) -> float:
        return self.single_cg_seconds / self.seconds

    @property
    def parallel_efficiency(self) -> float:
        return self.speedup_vs_single_cg / 4.0


def estimate_multi_cg(
    m: int,
    n: int,
    k: int,
    variant: str = "SCHED",
    params: BlockingParams | None = None,
    spec: SW26010Spec = DEFAULT_SPEC,
    calibration: Calibration = DEFAULT_CALIBRATION,
    noc: NoC | None = None,
) -> MultiCGEstimate:
    """Model the 4-CG run at paper scale."""
    noc = noc or NoC()
    estimator = Estimator(spec, calibration)
    panel = n // 4
    if n % 4 != 0:
        raise UnsupportedShapeError(f"n={n} does not split across 4 CGs")
    panel_est = estimator.estimate(variant, m, panel, k, params=params)
    single = estimator.estimate(variant, m, n, k, params=params)
    return MultiCGEstimate(
        m=m, n=n, k=k,
        broadcast_seconds=noc.broadcast_seconds(m * k * 8),
        panel_seconds=panel_est.seconds,
        single_cg_seconds=single.seconds,
    )
