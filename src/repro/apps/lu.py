"""Blocked LU factorization — the HPL trailing-update workload.

Right-looking blocked LU with partial pivoting::

    for each panel p:
        factor the panel (MPE, numpy)           # small, latency bound
        apply pivots to the trailing columns
        triangular-solve the block row           (MPE)
        A22 -= L21 @ U12                         # DGEMM on the CPE cluster

The trailing update is by far the flop-dominant step (O(n^3) of the
total), which is exactly why the paper's DGEMM matters to HPL; here it
runs through :func:`repro.core.api.dgemm` with ``alpha=-1, beta=1`` on
the simulated core group (``pad=True`` absorbs the shrinking trailing
shapes, which are rarely multiples of the CG block factors).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

from repro.errors import ConfigError, UnsupportedShapeError
from repro.arch.core_group import CoreGroup
from repro.core.api import dgemm
from repro.core.context import ExecutionContext
from repro.core.params import BlockingParams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.multi.processor import SW26010Processor

__all__ = ["LUResult", "blocked_lu", "lu_solve", "lu_residual"]


@dataclass
class LUResult:
    """Packed LU factors, pivots, and accounting."""

    lu: np.ndarray           # L (unit lower, below diagonal) and U packed
    piv: np.ndarray          # row swap at step i: rows i <-> piv[i]
    panel: int
    #: flops executed by the simulated CG (trailing updates only).
    gemm_flops: int

    @property
    def n(self) -> int:
        return self.lu.shape[0]

    def permutation(self) -> np.ndarray:
        """The row permutation P as an index vector (PA = LU)."""
        perm = np.arange(self.n)
        for i, p in enumerate(self.piv):
            perm[[i, p]] = perm[[p, i]]
        return perm


def _factor_panel(a: np.ndarray, col0: int, panel: int) -> list[int]:
    """Unblocked partial-pivoting LU of A[col0:, col0:col0+panel]."""
    n = a.shape[0]
    piv: list[int] = []
    hi = min(col0 + panel, n)
    for j in range(col0, hi):
        p = int(np.argmax(np.abs(a[j:, j]))) + j
        piv.append(p)
        if p != j:
            a[[j, p], :] = a[[p, j], :]
        if a[j, j] == 0.0:
            raise ConfigError(f"matrix is singular at column {j}")
        a[j + 1 :, j] /= a[j, j]
        if j + 1 < hi:
            a[j + 1 :, j + 1 : hi] -= np.outer(a[j + 1 :, j], a[j, j + 1 : hi])
    return piv


def blocked_lu(
    a: np.ndarray,
    panel: int = 64,
    variant: str = "SCHED",
    params: BlockingParams | None = None,
    core_group: CoreGroup | None = None,
    context: ExecutionContext | None = None,
    processor: "SW26010Processor | None" = None,
    tracer=None,
) -> LUResult:
    """Factor PA = LU with trailing updates on the simulated CG.

    ``panel`` is the blocking width of the panel factorization; the
    pivoting is applied across the whole row, as in HPL.  All trailing
    updates run inside one staging scope, so the device's byte budget
    is back at its baseline when the factorization returns.

    Pass ``processor=`` (an :class:`~repro.multi.processor.SW26010Processor`)
    to route each trailing update across the chip's four core groups —
    the HPL configuration — instead of serializing it on one CG; panel
    factorization and the triangular solves stay on CG 0.
    """
    if processor is not None and (core_group is not None or context is not None):
        raise ConfigError(
            "processor= routes trailing updates across core groups; "
            "core_group=/context= pin the single-CG path — pass one or "
            "the other"
        )
    a = np.asfortranarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise UnsupportedShapeError(f"blocked_lu needs a square matrix, got {a.shape}")
    if panel < 1:
        raise ConfigError(f"panel width must be >= 1, got {panel}")
    n = a.shape[0]
    lu = a.copy(order="F")
    piv = np.empty(n, dtype=np.int64)
    params = params or BlockingParams.small(double_buffered=True)
    gemm_flops = 0

    if processor is not None:
        core_group = processor.cg(0)
    with ExecutionContext.scoped(context, core_group) as ctx:
        for col0 in range(0, n, panel):
            width = min(panel, n - col0)
            # pivoted panel factorization touches the full rows (HPL
            # style: swaps are applied across the matrix)
            piv[col0 : col0 + width] = _factor_panel(lu, col0, width)
            hi = col0 + width
            if hi >= n:
                break
            # block row: U12 = L11^{-1} A12 via the blocked DTRSM
            # extension (diagonal solves on the MPE, inner updates back
            # on the CG)
            from repro.apps.blas3 import dtrsm_llnu

            lu[col0:hi, hi:] = dtrsm_llnu(
                lu[col0:hi, col0:hi], lu[col0:hi, hi:],
                block=max(16, width // 2), variant=variant,
                params=params, context=ctx, tracer=tracer,
            )
            # trailing update on the CPE cluster: A22 -= L21 @ U12
            l21 = lu[hi:, col0:hi]
            u12 = lu[col0:hi, hi:]
            if processor is not None:
                from repro.multi.dgemm4 import dgemm_multi_cg

                lu[hi:, hi:] = dgemm_multi_cg(
                    l21, u12, lu[hi:, hi:], alpha=-1.0, beta=1.0,
                    variant=variant, params=params, processor=processor,
                    pad=True,
                )
            else:
                lu[hi:, hi:] = dgemm(
                    l21,
                    u12,
                    lu[hi:, hi:],
                    alpha=-1.0,
                    beta=1.0,
                    variant=variant,
                    params=params,
                    context=ctx,
                    pad=True,
                    tracer=tracer,
                )
            gemm_flops += 2 * l21.shape[0] * u12.shape[1] * width
    return LUResult(lu=lu, piv=piv, panel=panel, gemm_flops=gemm_flops)


def lu_solve(result: LUResult, b: np.ndarray) -> np.ndarray:
    """Solve A x = b from the packed factors."""
    b = np.array(b, dtype=np.float64)
    if b.shape[0] != result.n:
        raise UnsupportedShapeError(
            f"rhs has {b.shape[0]} rows, factors are {result.n}x{result.n}"
        )
    x = b.copy()
    for i, p in enumerate(result.piv):
        if p != i:
            x[[i, p]] = x[[p, i]]
    lu = result.lu
    n = result.n
    for j in range(n):  # forward: L y = Pb (unit diagonal)
        x[j + 1 :] -= lu[j + 1 :, j] * x[j]
    for j in reversed(range(n)):  # backward: U x = y
        x[j] /= lu[j, j]
        x[:j] -= lu[:j, j] * x[j]
    return x


def lu_residual(a: np.ndarray, result: LUResult) -> float:
    """HPL-style scaled residual ||PA - LU|| / (||A|| * n * eps)."""
    n = result.n
    l = np.tril(result.lu, -1) + np.eye(n)
    u = np.triu(result.lu)
    pa = np.asarray(a, dtype=np.float64)[result.permutation(), :]
    err = np.linalg.norm(pa - l @ u, ord=np.inf)
    scale = np.linalg.norm(a, ord=np.inf) * n * np.finfo(np.float64).eps
    return float(err / scale)
