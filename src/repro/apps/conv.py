"""2-D convolution lowered to GEMM (im2col).

The paper's introduction cites convolutional networks as a GEMM
consumer [Chellapilla et al.]; this module implements the classic
lowering: unfold input patches into columns (``im2col``, done on the
MPE), multiply by the flattened kernel bank on the CPE cluster, fold
back into feature maps.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import ConfigError, UnsupportedShapeError
from repro.api import GemmRequest
from repro.arch.core_group import CoreGroup
from repro.core.api import dgemm
from repro.core.batch import dgemm_batch
from repro.core.context import ExecutionContext
from repro.core.params import BlockingParams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.multi.processor import SW26010Processor

__all__ = ["im2col", "conv2d_gemm", "conv2d_gemm_batch", "conv2d_reference"]


def im2col(images: np.ndarray, kh: int, kw: int, stride: int = 1) -> np.ndarray:
    """Unfold NCHW images into a (C*kh*kw) x (N*oh*ow) patch matrix.

    Column ``(n, y, x)`` holds the receptive field of output pixel
    ``(y, x)`` of image ``n``, flattened channel-major — the layout
    that makes convolution ``W_flat @ patches``.
    """
    if images.ndim != 4:
        raise UnsupportedShapeError(f"expected NCHW images, got shape {images.shape}")
    if kh < 1 or kw < 1 or stride < 1:
        raise ConfigError("kernel dims and stride must be >= 1")
    n, c, h, w = images.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    if oh <= 0 or ow <= 0:
        raise UnsupportedShapeError(
            f"kernel {kh}x{kw} does not fit input {h}x{w}"
        )
    cols = np.empty((c * kh * kw, n * oh * ow), dtype=np.float64, order="F")
    col = 0
    for img in range(n):
        for y in range(oh):
            for x in range(ow):
                patch = images[
                    img, :, y * stride : y * stride + kh, x * stride : x * stride + kw
                ]
                cols[:, col] = patch.reshape(-1)
                col += 1
    return cols


def conv2d_gemm(
    images: np.ndarray,
    kernels: np.ndarray,
    stride: int = 1,
    variant: str = "SCHED",
    params: BlockingParams | None = None,
    core_group: CoreGroup | None = None,
    context: ExecutionContext | None = None,
) -> np.ndarray:
    """Convolve NCHW ``images`` with OIHW ``kernels`` on the simulated CG.

    Returns N x O x oh x ow feature maps.  The GEMM is
    ``(O x C*kh*kw) @ (C*kh*kw x N*oh*ow)``, padded to the CG block
    factors.  Pass ``context=`` when convolving a sequence of
    same-shape layers so the staging allocations stay warm between
    calls.
    """
    if kernels.ndim != 4:
        raise UnsupportedShapeError(f"expected OIHW kernels, got shape {kernels.shape}")
    n, c, h, w = images.shape
    o, ci, kh, kw = kernels.shape
    if ci != c:
        raise UnsupportedShapeError(
            f"kernel expects {ci} input channels, images have {c}"
        )
    cols = im2col(np.asarray(images, dtype=np.float64), kh, kw, stride)
    w_flat = np.asarray(kernels, dtype=np.float64).reshape(o, c * kh * kw)
    params = params or BlockingParams.small(double_buffered=True)
    out_flat = dgemm(
        w_flat, cols, variant=variant, params=params,
        core_group=core_group, context=context, pad=True,
    )
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    # columns are ordered (n, y, x); fold back to N O oh ow
    return np.ascontiguousarray(
        out_flat.reshape(o, n, oh, ow).transpose(1, 0, 2, 3)
    )


def conv2d_gemm_batch(
    layers: Sequence[tuple[np.ndarray, np.ndarray]],
    stride: int = 1,
    variant: str = "SCHED",
    params: BlockingParams | None = None,
    processor: "SW26010Processor | None" = None,
    n_core_groups: int | None = None,
) -> tuple[np.ndarray, ...]:
    """Convolve many independent ``(images, kernels)`` layers at once.

    Each layer lowers to one GEMM; the whole sequence then runs through
    :func:`~repro.core.batch.dgemm_batch` — serially on one CG by
    default, or dispatched across the chip's core-group pool when
    ``processor=``/``n_core_groups=`` is given (the layers are
    independent, which is exactly the workload the
    :class:`~repro.multi.scheduler.CGScheduler` exists for; same-shape
    layers keep one CG's staging-plan cache hot).

    Returns the N x O x oh x ow feature maps per layer, in order.
    """
    if not layers:
        raise ConfigError("empty layer batch")
    params = params or BlockingParams.small(double_buffered=True)
    items: list[GemmRequest] = []
    folds: list[tuple[int, int, int, int]] = []
    for images, kernels in layers:
        if np.asarray(kernels).ndim != 4:
            raise UnsupportedShapeError(
                f"expected OIHW kernels, got shape {np.shape(kernels)}"
            )
        n, c, h, w = images.shape
        o, ci, kh, kw = kernels.shape
        if ci != c:
            raise UnsupportedShapeError(
                f"kernel expects {ci} input channels, images have {c}"
            )
        cols = im2col(np.asarray(images, dtype=np.float64), kh, kw, stride)
        w_flat = np.asarray(kernels, dtype=np.float64).reshape(o, c * kh * kw)
        items.append(GemmRequest(w_flat, cols))
        folds.append((o, n, (h - kh) // stride + 1, (w - kw) // stride + 1))
    result = dgemm_batch(
        items, variant=variant, params=params, pad=True,
        processor=processor, n_core_groups=n_core_groups,
    )
    return tuple(
        np.ascontiguousarray(
            out.reshape(o, n, oh, ow).transpose(1, 0, 2, 3)
        )
        for out, (o, n, oh, ow) in zip(result.outputs, folds)
    )


def conv2d_reference(
    images: np.ndarray, kernels: np.ndarray, stride: int = 1
) -> np.ndarray:
    """Direct convolution for validation."""
    n, c, h, w = images.shape
    o, _, kh, kw = kernels.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    out = np.zeros((n, o, oh, ow))
    for img in range(n):
        for f in range(o):
            for y in range(oh):
                for x in range(ow):
                    patch = images[
                        img, :, y * stride : y * stride + kh,
                        x * stride : x * stride + kw,
                    ]
                    out[img, f, y, x] = float(np.sum(patch * kernels[f]))
    return out
