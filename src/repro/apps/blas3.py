"""Further level-3 BLAS kernels built on the DGEMM core.

The paper's conclusion: "the work can be smoothly extended to other
dense matrix kernels".  This module is that extension for two kernels
whose flops are dominated by GEMM updates, in exactly the way vendor
libraries layer them:

- :func:`dtrsm_llnu` — triangular solve ``X = L^{-1} B`` (left, lower,
  non-transposed, unit diagonal): diagonal blocks solved on the MPE,
  off-diagonal updates are simulated-CG DGEMMs;
- :func:`dsyrk_ln` — symmetric rank-k update ``C = alpha*A*A^T +
  beta*C`` (lower, non-transposed): block-column products through
  ``dgemm(transb="T")``, with only the lower triangle written back.

Both match their numpy references in the tests, and both route >90% of
their flops through the paper's kernel at realistic block counts.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, UnsupportedShapeError
from repro.arch.core_group import CoreGroup
from repro.core.api import dgemm
from repro.core.context import ExecutionContext
from repro.core.params import BlockingParams

__all__ = ["dtrsm_llnu", "dsyrk_ln"]


def dtrsm_llnu(
    l_matrix: np.ndarray,
    b: np.ndarray,
    block: int = 64,
    variant: str = "SCHED",
    params: BlockingParams | None = None,
    core_group: CoreGroup | None = None,
    context: ExecutionContext | None = None,
    tracer=None,
) -> np.ndarray:
    """Solve ``L X = B`` for unit-lower-triangular L (blocked).

    Forward substitution over ``block``-sized row panels::

        X[i]  = B[i] - L[i, :i] @ X[:i]     # the DGEMM update
        X[i] := L[i, i]^{-1} X[i]           # small solve on the MPE

    Strictly-upper entries of ``l_matrix`` are ignored and the diagonal
    is taken as 1, per BLAS ``diag='U'`` semantics.
    """
    l_matrix = np.asfortranarray(l_matrix, dtype=np.float64)
    b = np.asfortranarray(b, dtype=np.float64)
    if l_matrix.ndim != 2 or l_matrix.shape[0] != l_matrix.shape[1]:
        raise UnsupportedShapeError(f"L must be square, got {l_matrix.shape}")
    n = l_matrix.shape[0]
    if b.ndim != 2 or b.shape[0] != n:
        raise UnsupportedShapeError(
            f"B has {b.shape[0] if b.ndim == 2 else '?'} rows, L is {n}x{n}"
        )
    if block < 1:
        raise ConfigError(f"block must be >= 1, got {block}")
    params = params or BlockingParams.small(double_buffered=True)

    x = b.copy(order="F")
    # one staging scope for the whole sweep: equal-width panels reuse
    # their staging allocations in place across iterations
    with ExecutionContext.scoped(context, core_group) as ctx:
        for lo in range(0, n, block):
            hi = min(lo + block, n)
            if lo > 0:
                # X[lo:hi] -= L[lo:hi, :lo] @ X[:lo]  — on the CPE cluster
                x[lo:hi, :] = dgemm(
                    l_matrix[lo:hi, :lo],
                    x[:lo, :],
                    x[lo:hi, :],
                    alpha=-1.0,
                    beta=1.0,
                    variant=variant,
                    params=params,
                    context=ctx,
                    pad=True,
                    tracer=tracer,
                )
            # unit-lower diagonal block solve on the MPE
            diag = np.tril(l_matrix[lo:hi, lo:hi], -1) + np.eye(hi - lo)
            for j in range(hi - lo):  # forward substitution, unit diagonal
                x[lo + j + 1 : hi, :] -= np.outer(diag[j + 1 :, j], x[lo + j, :])
    return x


def dsyrk_ln(
    a: np.ndarray,
    c: np.ndarray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
    block: int = 128,
    variant: str = "SCHED",
    params: BlockingParams | None = None,
    core_group: CoreGroup | None = None,
    context: ExecutionContext | None = None,
    tracer=None,
) -> np.ndarray:
    """Symmetric rank-k update ``C = alpha*A*A^T + beta*C`` (lower).

    Only the lower triangle of the returned matrix is meaningful, per
    BLAS; the strict upper triangle of the input C is not read.  Block
    row-pairs below the diagonal are full DGEMMs; diagonal blocks are
    computed fully and their lower triangle kept.
    """
    a = np.asfortranarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise UnsupportedShapeError(f"A must be a matrix, got ndim {a.ndim}")
    n, k = a.shape
    if c is None:
        if beta != 0.0:
            raise UnsupportedShapeError("beta != 0 requires an input C")
        c = np.zeros((n, n), dtype=np.float64, order="F")
    c = np.asfortranarray(c, dtype=np.float64)
    if c.shape != (n, n):
        raise UnsupportedShapeError(f"C is {c.shape}, expected {(n, n)}")
    if block < 1:
        raise ConfigError(f"block must be >= 1, got {block}")
    params = params or BlockingParams.small(double_buffered=True)

    out = c.copy(order="F")
    with ExecutionContext.scoped(context, core_group) as ctx:
        for lo in range(0, n, block):
            hi = min(lo + block, n)
            # one block row of the product: rows [lo, hi) x columns [0, hi)
            update = dgemm(
                a[lo:hi, :],
                a[:hi, :],
                out[lo:hi, :hi],
                alpha=alpha,
                beta=beta,
                transb="T",
                variant=variant,
                params=params,
                context=ctx,
                pad=True,
                tracer=tracer,
            )
            out[lo:hi, :hi] = update
    # zero the strict upper triangle for a canonical result
    return np.asfortranarray(np.tril(out))
