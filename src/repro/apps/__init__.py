"""Application layers built on the DGEMM core.

The paper motivates DGEMM through its consumers: HPL (the TOP500
benchmark whose trailing-matrix updates are DGEMM calls) and dense
kernels in machine-learning workloads (convolution as GEMM).  This
subpackage implements both consumers against :func:`repro.core.api.dgemm`
so the examples exercise the public API on the workloads the paper's
introduction cites.

- :mod:`repro.apps.lu` — blocked right-looking LU with partial
  pivoting; panel factorization runs on the MPE (plain numpy, as real
  xMath does for small panels), trailing updates are simulated-CG
  DGEMM calls;
- :mod:`repro.apps.conv` — 2-D convolution lowered to GEMM via im2col.
"""

from repro.apps.lu import blocked_lu, lu_residual, lu_solve
from repro.apps.conv import conv2d_gemm, conv2d_gemm_batch, conv2d_reference, im2col
from repro.apps.blas3 import dsyrk_ln, dtrsm_llnu

__all__ = [
    "blocked_lu",
    "lu_solve",
    "lu_residual",
    "conv2d_gemm",
    "conv2d_gemm_batch",
    "conv2d_reference",
    "im2col",
    "dtrsm_llnu",
    "dsyrk_ln",
]
