"""Fault injection and resilience for the Session/scheduler stack.

The paper's pipeline is a chain of asynchronous DMA stages, register
exchanges and multi-CG dispatch; co-designed BLAS stacks treat runtime
resilience as a first-class layer, not an afterthought.  This package
supplies that layer for the reproduction:

- :class:`FaultInjector` / :class:`FaultSpec` — deterministic, seedable
  fault injection over the pipeline's known fault sites
  (:data:`FAULT_SITES`), threaded through the device model, both
  execution engines and the scheduler;
- :class:`RetryPolicy` — bounded bit-exact retries with deterministic
  backoff accounted in modeled time;
- :class:`FaultReport` — the per-item observable outcome of the
  recovery ladder (retry -> engine fallback -> CG quarantine ->
  structured failure);
- :class:`RecoveryStats` / :class:`InjectionStats` — the ``resil.*``
  counter namespace surfaced through
  :mod:`repro.obs.registry` and span telemetry.

See ``docs/architecture.md`` ("Resilience") for the fault model and
the invariants ``tools/check_resilience.py`` enforces.
"""

from repro.resil.faults import (
    FAULT_SITES,
    FaultInjector,
    FaultSpec,
    InjectionStats,
    fault_phase,
)
from repro.resil.policy import (
    DEFAULT_RETRY_POLICY,
    FaultReport,
    RecoveryStats,
    RetryPolicy,
)

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "FAULT_SITES",
    "FaultInjector",
    "FaultReport",
    "FaultSpec",
    "InjectionStats",
    "RecoveryStats",
    "RetryPolicy",
    "fault_phase",
]
