"""Deterministic, seedable fault injection for the DGEMM pipeline.

The stack this package hardens is a long chain of asynchronous stages —
host staging copies, DMA gets/puts, register-communication broadcasts,
tile compute, multi-CG dispatch — and a transient failure at any link
silently corrupts a whole batch unless the runtime can observe and
recover from it.  :class:`FaultInjector` makes those failures a
first-class, *reproducible* input: a set of :class:`FaultSpec` records
armed over the known fault sites, threaded through the device model
(:class:`~repro.arch.dma.DMAEngine`,
:class:`~repro.arch.regcomm.RegisterComm`,
:class:`~repro.arch.memory.MainMemory`), both execution engines, and
:class:`~repro.multi.scheduler.CGScheduler`.

Determinism is the design constraint: the simulation is serial, every
fire point calls :meth:`FaultInjector.fire` in program order, and
probability triggers draw from one seeded generator — so a fault
schedule is a pure function of ``(specs, seed, workload)`` and every
chaos run replays exactly.  That is what lets the resilience checker
assert *bit-identical* recovery instead of "close enough".

Fault sites
-----------

==================  ====================================================
``dma.get``         main memory -> LDM transfer (PE/ROW/BCAST get)
``dma.put``         LDM -> main memory transfer (PE/ROW put)
``regcomm``         register-network broadcast or point-to-point send
``memory.store``    host-side staging copy into main memory
``compute``         a CPE tile-compute phase (kernel / strip multiply)
``cg``              whole-CG dispatch (scheduler-level; quarantines)
==================  ====================================================
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.errors import ConfigError, FaultInjectedError
from repro.utils.stats import StatsProtocol

__all__ = ["FAULT_SITES", "FaultInjector", "FaultSpec", "InjectionStats", "fault_phase"]

#: every site the package's fire points name, in pipeline order.
FAULT_SITES = (
    "memory.store",
    "dma.get",
    "dma.put",
    "regcomm",
    "compute",
    "cg",
)


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: where it strikes and what triggers it.

    Exactly one trigger must be set: ``nth`` fires on the N-th eligible
    call (1-based, once), ``probability`` fires each eligible call with
    that chance from the injector's seeded generator.  Eligibility is
    the conjunction of the filters: ``site`` always, plus ``phase``
    (the pipeline phase pushed by :func:`fault_phase`, e.g.
    ``"stage_A"`` or ``"kernel"``) and ``cg`` (core-group index) when
    given.  ``max_fires`` bounds how often the spec strikes in total
    (``None`` = unbounded for probability specs; ``nth`` specs always
    fire exactly once).
    """

    site: str
    probability: float = 0.0
    nth: int | None = None
    phase: str | None = None
    cg: int | None = None
    max_fires: int | None = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ConfigError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{', '.join(FAULT_SITES)}"
            )
        if self.nth is not None and self.probability:
            raise ConfigError("give nth= or probability=, not both")
        if self.nth is None and not self.probability:
            raise ConfigError("a FaultSpec needs a trigger: nth= or probability=")
        if self.nth is not None and self.nth < 1:
            raise ConfigError(f"nth is 1-based, got {self.nth}")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(f"probability must be in [0, 1], got {self.probability}")
        if self.max_fires is not None and self.max_fires < 1:
            raise ConfigError(f"max_fires must be >= 1, got {self.max_fires}")

    @property
    def fire_limit(self) -> int | None:
        """Effective cap on fires: ``nth`` specs are one-shot."""
        if self.nth is not None:
            return 1
        return self.max_fires


@dataclass
class InjectionStats(StatsProtocol):
    """What the injector has done: calls seen and faults raised."""

    #: fire-point calls observed (eligible or not).
    calls: int = 0
    #: faults actually raised.
    injected: int = 0
    #: faults raised, keyed by site name.
    by_site: dict = field(default_factory=dict)


class FaultInjector:
    """Raises :class:`~repro.errors.FaultInjectedError` on armed sites.

    Attach to a device tree via
    :meth:`~repro.arch.core_group.CoreGroup.attach_injector` (or
    :meth:`~repro.multi.processor.SW26010Processor.attach_injector`);
    pass to :class:`~repro.core.session.Session` /
    :class:`~repro.multi.scheduler.CGScheduler` as ``injector=`` and
    the wiring happens for you.  One injector may serve all four CGs —
    per-spec ``cg`` filters target a single one.

    The injector is *passive* between fires: a fire point costs one
    attribute check when no injector is attached, and one loop over the
    armed specs when one is.  Fire points are thread-safe: one lock
    serializes the call/eligibility counters and the seeded generator,
    so the parallel scheduler's per-CG workers share one injector
    without corrupting its bookkeeping (the *order* of fires across
    threads follows the thread interleaving, as on real hardware).
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), *, seed: int = 0) -> None:
        self.specs = tuple(specs)
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigError(
                    f"specs must be FaultSpec instances, got {type(spec).__name__}"
                )
        self.seed = int(seed)
        self.enabled = True
        self.stats = InjectionStats()
        #: pipeline phase is tracked per thread: parallel CG workers
        #: scope their own phases without clobbering each other's.
        self._phase_local = threading.local()
        self._lock = threading.Lock()
        self._rng = np.random.default_rng(self.seed)
        self._eligible = [0] * len(self.specs)
        self._fired = [0] * len(self.specs)

    # -- lifecycle -----------------------------------------------------

    def reset(self) -> None:
        """Back to the armed state: counters zeroed, generator reseeded.

        After ``reset()`` the injector replays the identical fault
        schedule for the identical call sequence — the property the
        resilience checker's fault-free/faulted comparisons build on.
        """
        with self._lock:
            self.stats = InjectionStats()
            self._rng = np.random.default_rng(self.seed)
            self._eligible = [0] * len(self.specs)
            self._fired = [0] * len(self.specs)

    @contextlib.contextmanager
    def disabled(self) -> Iterator["FaultInjector"]:
        """Scope with every spec disarmed (baseline / verification runs)."""
        prev = self.enabled
        self.enabled = False
        try:
            yield self
        finally:
            self.enabled = prev

    # -- phase scoping -------------------------------------------------

    @property
    def current_phase(self) -> str | None:
        """This thread's pipeline phase (``phase=`` spec filter scope)."""
        phase: str | None = getattr(self._phase_local, "phase", None)
        return phase

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator["FaultInjector"]:
        """Scope marking the current pipeline phase for ``phase=`` specs."""
        prev = self.current_phase
        self._phase_local.phase = name
        try:
            yield self
        finally:
            self._phase_local.phase = prev

    # -- the fire point ------------------------------------------------

    def fire(self, site: str, *, cg: int | None = None) -> None:
        """Called by instrumented code at ``site``; raises when armed.

        ``cg`` is the core-group index when the caller knows it (device
        fire points attached via ``attach_injector`` always do).  Specs
        filtered to a CG never match a call that cannot name one.
        """
        if not self.enabled:
            return
        phase = self.current_phase
        with self._lock:
            self.stats.calls += 1
            for i, spec in enumerate(self.specs):
                if spec.site != site:
                    continue
                if spec.cg is not None and spec.cg != cg:
                    continue
                if spec.phase is not None and spec.phase != phase:
                    continue
                limit = spec.fire_limit
                if limit is not None and self._fired[i] >= limit:
                    continue
                self._eligible[i] += 1
                if spec.nth is not None:
                    triggered = self._eligible[i] == spec.nth
                else:
                    triggered = bool(self._rng.random() < spec.probability)
                if not triggered:
                    continue
                self._fired[i] += 1
                self.stats.injected += 1
                self.stats.by_site[site] = self.stats.by_site.get(site, 0) + 1
                raise FaultInjectedError(site, cg=cg, phase=phase)

    def stats_snapshot(self) -> dict:
        """A consistent copy of the injection totals.

        Taken under the injector's lock, so a snapshot read while
        parallel workers are firing never observes (or trips over) a
        half-updated ``by_site`` table.
        """
        with self._lock:
            return self.stats.as_dict()

    def fires_remaining(self) -> bool:
        """Whether any armed spec can still strike."""
        if not self.enabled:
            return False
        return any(
            spec.fire_limit is None or fired < spec.fire_limit
            for spec, fired in zip(self.specs, self._fired)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "armed" if self.enabled else "disarmed"
        return (
            f"FaultInjector({len(self.specs)} specs, seed={self.seed}, "
            f"{state}, injected={self.stats.injected})"
        )


def fault_phase(
    injector: FaultInjector | None, name: str
) -> contextlib.AbstractContextManager[FaultInjector | None]:
    """``injector.phase(name)``, or a no-op scope when no injector is wired.

    The shared idiom of the instrumented pipeline: phases cost nothing
    unless chaos testing is on.
    """
    if injector is None:
        return contextlib.nullcontext()
    return injector.phase(name)
