"""Retry, fallback and quarantine policy for faulted batch items.

The recovery ladder (applied per batch item, in order):

1. **Retry** — a transient fault (:class:`~repro.errors.FaultInjectedError`)
   re-runs the item on its core group, up to
   :attr:`RetryPolicy.max_retries` times.  Every attempt restages the
   operands from the host arrays, so a successful retry is *bit-exact*:
   nothing a failed attempt half-wrote survives into the next one.
   Backoff is deterministic and accounted in **modeled** seconds
   (geometric: ``backoff_seconds * backoff_factor ** (retry - 1)``) —
   the simulation never sleeps.
2. **Fallback engine** — when retries exhaust and the scheduler has a
   ``fallback_engine`` (a :class:`~repro.core.session.Session` batch
   falls back from ``vectorized`` to ``device``), the item runs once
   more on that engine.
3. **Quarantine** — a whole-CG fault (site ``"cg"``) marks the core
   group unhealthy for the rest of the run; its queued items respill to
   the least-loaded healthy CG.  Load-balance statistics then count
   healthy CGs only.
4. **Structured failure** — an item past the ladder reports a
   :class:`FaultReport` with ``recovered=False`` and a per-item
   :class:`~repro.multi.scheduler.ItemError`; its output slot is
   ``None``.  A wrong answer is never returned silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError, FaultInjectedError
from repro.utils.stats import StatsProtocol

__all__ = ["DEFAULT_RETRY_POLICY", "FaultReport", "RecoveryStats", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic geometric backoff.

    ``max_retries=0`` disables retrying (faults fail fast into the
    fallback/report path).  ``retry_faults_only`` (the default)
    restricts retries to injected transient faults — deterministic
    failures (shape errors, NaN check failures) would fail identically
    again, so retrying them only burns modeled time; set it ``False``
    to retry any exception, as a real runtime facing genuinely
    transient causes would.
    """

    max_retries: int = 2
    #: modeled seconds charged before the first retry.
    backoff_seconds: float = 1e-6
    #: geometric growth factor per subsequent retry.
    backoff_factor: float = 2.0
    retry_faults_only: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_seconds < 0:
            raise ConfigError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    @property
    def enabled(self) -> bool:
        return self.max_retries > 0

    def should_retry(self, exc: BaseException, retries_done: int) -> bool:
        """Whether one more retry is due after ``exc``."""
        if retries_done >= self.max_retries:
            return False
        if self.retry_faults_only and not isinstance(exc, FaultInjectedError):
            return False
        return True

    def backoff_for(self, retry: int) -> float:
        """Modeled backoff before the ``retry``-th retry (1-based)."""
        if retry < 1:
            raise ConfigError(f"retry index is 1-based, got {retry}")
        return self.backoff_seconds * self.backoff_factor ** (retry - 1)

    def total_backoff(self, retries: int) -> float:
        """Summed modeled backoff of ``retries`` consecutive retries."""
        return sum(self.backoff_for(i) for i in range(1, retries + 1))


#: the session default: two bit-exact retries, then degrade.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass(frozen=True)
class FaultReport:
    """What the resilience layer did about one disturbed batch item.

    Produced only for items that saw at least one fault, retry,
    fallback or quarantine — a clean run carries no reports.  The
    report is the observable contract of the recovery ladder: either
    ``recovered`` is ``True`` and the item's output is correct, or the
    item's :class:`~repro.multi.scheduler.ItemError` carries
    ``error_kind``/``error_message`` and its output slot is ``None``.
    """

    #: batch index of the item.
    index: int
    #: site of the first fault this item saw (``None`` for non-fault errors).
    site: str | None
    #: execution attempts (1 + retries + fallback attempt, if any).
    attempts: int
    #: retries consumed on the primary engine.
    retries: int
    #: modeled seconds charged as retry backoff.
    backoff_seconds: float
    #: engine the item degraded to, when the primary exhausted retries.
    fallback_engine: str | None
    #: CGs this item's dispatch quarantined (whole-CG faults).
    quarantined_cgs: tuple[int, ...]
    #: core group that produced the final outcome.
    core_group: int
    #: whether the item finally produced a verified output.
    recovered: bool
    error_kind: str | None = None
    error_message: str | None = None

    @property
    def ok(self) -> bool:
        return self.recovered


@dataclass
class RecoveryStats(StatsProtocol):
    """Scheduler-side resilience counters (the ``resil.*`` namespace).

    Combined with :class:`~repro.resil.faults.InjectionStats` by
    :meth:`~repro.multi.scheduler.CGScheduler.resil_stats`, so one
    snapshot answers: how many faults were injected, how many items
    recovered, at what modeled backoff cost, and how much of the pool
    is quarantined.
    """

    #: fault-disturbed items that finally produced a correct output.
    recovered: int = 0
    #: items that ran out of ladder (structured per-item errors).
    exhausted: int = 0
    retries: int = 0
    fallbacks: int = 0
    quarantines: int = 0
    #: items re-homed from a quarantined CG to a healthy one.
    respilled: int = 0
    backoff_seconds: float = 0.0
    #: faults observed by the scheduler, keyed by site.
    faults_seen: dict = field(default_factory=dict)

    def record_fault(self, site: str) -> None:
        self.faults_seen[site] = self.faults_seen.get(site, 0) + 1
