"""Systematic ablation: switch one component off, measure what it buys.

The harness the ROADMAP's co-design item asks for, replacing the ad-hoc
``benchmarks/bench_ablations.py`` driver:

- :mod:`repro.ablate.config` — frozen configurations with stable
  deterministic run IDs;
- :mod:`repro.ablate.matrix` — baseline + one-component-off run
  generation over stage, engine, scheduler policy, retry, parallel
  dispatch and blocking;
- :mod:`repro.ablate.executor` — drives each config through a real
  :class:`~repro.core.session.Session`, capturing wall p50, modeled
  makespan/Gflop/s, and DMA bytes from the metrics registry;
- :mod:`repro.ablate.rank` — per-component importance from metric
  deltas vs the baseline;
- :mod:`repro.ablate.report` — JSON + rendered emitters.

:func:`run_ablation` chains all of it; ``repro-dgemm ablate`` is the
CLI entry (``--smoke`` is the CI gate asserting the baseline beats
every stage-off config on modeled Gflop/s).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.ablate.config import COMPONENTS, AblationConfig
from repro.ablate.executor import RunMetrics, execute_matrix, execute_run
from repro.ablate.matrix import (
    AblationRun,
    build_matrix,
    default_blocking_alternatives,
)
from repro.ablate.rank import ComponentImportance, RunDelta, rank_importance
from repro.ablate.report import REPORT_VERSION, AblationReport, render_report

__all__ = [
    "COMPONENTS",
    "REPORT_VERSION",
    "AblationConfig",
    "AblationReport",
    "AblationRun",
    "ComponentImportance",
    "RunDelta",
    "RunMetrics",
    "build_matrix",
    "default_blocking_alternatives",
    "execute_matrix",
    "execute_run",
    "rank_importance",
    "render_report",
    "run_ablation",
]


def run_ablation(
    baseline: AblationConfig | None = None,
    *,
    runs: Sequence[AblationRun] | None = None,
    n_items: int = 8,
    reps: int = 3,
    seed: int = 0,
    progress: Callable[[str], None] | None = None,
) -> AblationReport:
    """Generate the matrix (unless given), execute it, rank importance."""
    if runs is None:
        runs = build_matrix(baseline)
    metrics = execute_matrix(
        runs, n_items=n_items, reps=reps, seed=seed, progress=progress
    )
    baseline_metrics = next(
        m for m in metrics if m.component == "baseline"
    )
    importance = rank_importance(baseline_metrics, metrics)
    return AblationReport(
        runs=tuple(runs),
        metrics=tuple(metrics),
        importance=tuple(importance),
    )
