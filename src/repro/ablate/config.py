"""Ablation run configurations and their stable identities.

An :class:`AblationConfig` pins every component the harness can switch:
optimization stage (the paper's RAW→PE→ROW→DB→SCHED ladder), execution
engine, scheduler dispatch policy, retry policy, parallel dispatch, and
the blocking triple.  Configs are frozen and hashable, and each one has
a deterministic :meth:`run_id` — a truncated SHA-256 over the canonical
field string — so the same config names the same run across processes,
machines, and report diffs (the aumai-ablation exemplar's requirement).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Any

from repro.core.params import BlockingParams
from repro.core.variants import VARIANTS, get_variant
from repro.errors import ConfigError
from repro.multi.scheduler import POLICIES

__all__ = ["COMPONENTS", "AblationConfig"]

#: the switchable components, in report order.  ``build_matrix``
#: produces exactly one run per (component, off-value) pair.
COMPONENTS = ("stage", "engine", "scheduler", "retry", "parallel", "blocking")

_ENGINES = ("device", "stepwise", "vectorized")


@dataclass(frozen=True)
class AblationConfig:
    """One fully pinned harness configuration."""

    #: optimization stage (variant name: RAW/PE/ROW/DB/SCHED/...).
    variant: str = "SCHED"
    #: execution engine driving every item.
    engine: str = "stepwise"
    #: scheduler dispatch policy (see :data:`repro.multi.scheduler.POLICIES`).
    policy: str = "binned"
    #: whether the resilience retry ladder is armed.
    retry: bool = True
    #: whether batch dispatch runs on per-CG worker threads.
    parallel: bool = True
    #: blocking triple ``(p_m, p_n, p_k)``; the buffering flag is
    #: derived from the variant's traits (engines enforce the regime).
    blocking: tuple[int, int, int] = (16, 8, 16)
    #: CG pool size.
    n_core_groups: int = 4

    def __post_init__(self) -> None:
        object.__setattr__(self, "variant", str(self.variant).upper())
        object.__setattr__(self, "engine", str(self.engine).lower())
        object.__setattr__(self, "policy", str(self.policy).lower())
        object.__setattr__(
            self, "blocking", tuple(int(x) for x in self.blocking)
        )
        if self.variant not in VARIANTS:
            raise ConfigError(
                f"unknown variant {self.variant!r} "
                f"(expected one of {', '.join(sorted(VARIANTS))})"
            )
        if self.engine not in _ENGINES:
            raise ConfigError(
                f"unknown engine {self.engine!r} "
                f"(expected one of {', '.join(_ENGINES)})"
            )
        if self.policy not in POLICIES:
            raise ConfigError(
                f"unknown policy {self.policy!r} "
                f"(expected one of {', '.join(POLICIES)})"
            )
        if len(self.blocking) != 3:
            raise ConfigError(
                f"blocking must be a (p_m, p_n, p_k) triple, "
                f"got {self.blocking!r}"
            )

    def params(self) -> BlockingParams:
        """The blocking triple as live params, buffered per the variant."""
        traits = get_variant(self.variant).traits
        p_m, p_n, p_k = self.blocking
        return BlockingParams(
            p_m=p_m, p_n=p_n, p_k=p_k,
            double_buffered=bool(traits.double_buffered),
        )

    def canonical(self) -> str:
        """The identity string the run ID hashes — field order is part
        of the scheme and must not change across releases."""
        return (
            f"variant={self.variant};engine={self.engine};"
            f"policy={self.policy};retry={int(self.retry)};"
            f"parallel={int(self.parallel)};"
            f"blocking={self.blocking[0]}x{self.blocking[1]}"
            f"x{self.blocking[2]};cgs={self.n_core_groups}"
        )

    def run_id(self) -> str:
        """``ab-<12 hex>``: stable across processes for equal configs."""
        digest = hashlib.sha256(self.canonical().encode("ascii")).hexdigest()
        return f"ab-{digest[:12]}"

    def with_component(self, component: str, value: Any) -> "AblationConfig":
        """A copy with exactly one component switched to ``value``."""
        if component == "stage":
            return replace(self, variant=value)
        if component == "engine":
            return replace(self, engine=value)
        if component == "scheduler":
            return replace(self, policy=value)
        if component == "retry":
            return replace(self, retry=bool(value))
        if component == "parallel":
            return replace(self, parallel=bool(value))
        if component == "blocking":
            return replace(self, blocking=tuple(value))
        raise ConfigError(
            f"unknown ablation component {component!r} "
            f"(expected one of {', '.join(COMPONENTS)})"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "variant": self.variant,
            "engine": self.engine,
            "policy": self.policy,
            "retry": self.retry,
            "parallel": self.parallel,
            "blocking": list(self.blocking),
            "n_core_groups": self.n_core_groups,
        }
