"""Ablation executor: drive each config through a real ``Session``.

Every run sees the *same* seeded workload (a ``mixed_batch`` stream),
executes it ``reps`` times after one warm-up batch, and reports three
kinds of metric:

- **measured** — wall-clock p50 of the batch, and the Gflop/s it
  implies.  Meaningful for axes that change what the Python simulation
  actually does (engine, parallel dispatch, retry bookkeeping).
- **modeled** — the makespan the hardware model assigns the batch, and
  the Gflop/s it implies.  This is the *deterministic* signal for the
  axes the paper is about (optimization stage, scheduler policy,
  blocking): wall-clock of the simulation is not ordered across
  variants (a simulated RAW run is slow hardware but cheap Python), the
  model is.
- **traffic** — DMA bytes per batch from the session's
  :class:`~repro.obs.registry.MetricsRegistry` delta
  (``session.traffic.dma_bytes``), the paper's other currency.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from statistics import median
from typing import Any, Callable, Sequence

from repro.ablate.matrix import AblationRun
from repro.errors import ConfigError
from repro.resil.policy import DEFAULT_RETRY_POLICY
from repro.workloads.matrices import mixed_batch

__all__ = ["RunMetrics", "execute_matrix", "execute_run"]


@dataclass(frozen=True)
class RunMetrics:
    """Every metric captured for one ablation run."""

    run_id: str
    component: str
    value: str
    #: wall-clock p50 of one batch over the reps, seconds.
    wall_p50_seconds: float
    #: modeled makespan of one batch, seconds (deterministic).
    modeled_makespan_seconds: float
    #: logical flops of one batch.
    flops: int
    #: DMA bytes one batch moves (registry delta averaged over reps).
    dma_bytes: int
    #: batch items that failed (0 on a healthy config).
    failures: int

    @property
    def measured_gflops(self) -> float:
        """Gflop/s by wall clock — simulation speed, not modeled speed."""
        if self.wall_p50_seconds <= 0:
            return 0.0
        return self.flops / self.wall_p50_seconds / 1e9

    @property
    def modeled_gflops(self) -> float:
        """Gflop/s by the hardware model — the paper-facing metric."""
        if self.modeled_makespan_seconds <= 0:
            return 0.0
        return self.flops / self.modeled_makespan_seconds / 1e9

    def as_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "component": self.component,
            "value": self.value,
            "wall_p50_seconds": self.wall_p50_seconds,
            "modeled_makespan_seconds": self.modeled_makespan_seconds,
            "measured_gflops": self.measured_gflops,
            "modeled_gflops": self.modeled_gflops,
            "flops": self.flops,
            "dma_bytes": self.dma_bytes,
            "failures": self.failures,
        }


def execute_run(
    run: AblationRun, items: Sequence, reps: int = 3
) -> RunMetrics:
    """Execute one config against a fixed workload; capture all metrics."""
    if reps < 1:
        raise ConfigError(f"reps must be >= 1, got {reps}")
    from repro.core.session import Session

    config = run.config
    with Session(
        variant=config.variant,
        engine=config.engine,
        params=config.params(),
        n_core_groups=config.n_core_groups,
        policy=config.policy,
        retry_policy=DEFAULT_RETRY_POLICY if config.retry else None,
    ) as session:
        registry = session.metrics_registry()
        result = session.batch(list(items), parallel=config.parallel)
        before = registry.snapshot()
        samples = []
        for _ in range(reps):
            start = time.perf_counter()
            result = session.batch(list(items), parallel=config.parallel)
            samples.append(time.perf_counter() - start)
        dma_delta = registry.delta(registry.snapshot(), before)
    return RunMetrics(
        run_id=run.run_id,
        component=run.component,
        value=run.value,
        wall_p50_seconds=float(median(samples)),
        modeled_makespan_seconds=result.makespan_seconds,
        flops=result.flops,
        dma_bytes=int(dma_delta.get("session.traffic.dma_bytes", 0)) // reps,
        failures=len(result.errors),
    )


def execute_matrix(
    runs: Sequence[AblationRun],
    *,
    n_items: int = 8,
    reps: int = 3,
    seed: int = 0,
    progress: Callable[[str], None] | None = None,
) -> list[RunMetrics]:
    """Execute every run against one shared seeded workload."""
    if not runs:
        raise ConfigError("empty ablation matrix")
    items = mixed_batch(n_items, seed=seed)
    results = []
    for run in runs:
        metrics = execute_run(run, items, reps=reps)
        results.append(metrics)
        if progress is not None:
            progress(
                f"{run.run_id} {run.component}={run.value}: "
                f"{metrics.modeled_gflops:.1f} Gflop/s modeled, "
                f"{metrics.wall_p50_seconds * 1e3:.1f} ms wall p50"
            )
    return results
