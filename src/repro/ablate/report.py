"""Report emitters: a machine-readable JSON document and a rendered table.

The JSON document is the nightly-CI artifact (schema-versioned, stable
key order); the rendered table is what ``repro-dgemm ablate`` prints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.ablate.executor import RunMetrics
from repro.ablate.matrix import AblationRun
from repro.ablate.rank import ComponentImportance
from repro.errors import ConfigError

__all__ = ["REPORT_VERSION", "AblationReport", "render_report"]

#: schema version of the JSON report artifact.
REPORT_VERSION = 1


@dataclass(frozen=True)
class AblationReport:
    """Everything one ablation produced, ready to emit."""

    runs: tuple[AblationRun, ...]
    metrics: tuple[RunMetrics, ...]
    importance: tuple[ComponentImportance, ...]

    @property
    def baseline(self) -> RunMetrics:
        for metrics in self.metrics:
            if metrics.component == "baseline":
                return metrics
        raise ConfigError("ablation report has no baseline run")

    def as_dict(self) -> dict[str, Any]:
        return {
            "version": REPORT_VERSION,
            "baseline": self.baseline.as_dict(),
            "runs": [run.as_dict() for run in self.runs],
            "metrics": [metrics.as_dict() for metrics in self.metrics],
            "importance": [imp.as_dict() for imp in self.importance],
        }

    def save(self, path: str | Path) -> Path:
        target = Path(path)
        target.write_text(
            json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return target


def _fmt_pct(value: float) -> str:
    return f"{value * 100:+.1f}%"


def render_report(report: AblationReport) -> str:
    """The human-facing table: runs, then the importance ranking."""
    baseline = report.baseline
    lines = [
        "ablation report",
        f"  baseline {baseline.run_id}: "
        f"{baseline.modeled_gflops:.1f} Gflop/s modeled, "
        f"{baseline.wall_p50_seconds * 1e3:.1f} ms wall p50, "
        f"{baseline.dma_bytes} DMA bytes/batch",
        "",
        f"  {'run':<16} {'component':<11} {'off-value':<12} "
        f"{'modeled Gf/s':>12} {'wall p50 ms':>12} {'failures':>8}",
    ]
    for metrics in report.metrics:
        lines.append(
            f"  {metrics.run_id:<16} {metrics.component:<11} "
            f"{metrics.value:<12} {metrics.modeled_gflops:>12.1f} "
            f"{metrics.wall_p50_seconds * 1e3:>12.1f} "
            f"{metrics.failures:>8}"
        )
    lines += [
        "",
        "importance (worst off-value per component, vs baseline):",
        f"  {'component':<11} {'worst':<12} {'modeled drop':>12} "
        f"{'wall slowdown':>13} {'DMA increase':>13}  signal",
    ]
    for imp in report.importance:
        signal = "modeled" if imp.modeled else "wall"
        lines.append(
            f"  {imp.component:<11} {imp.worst_value:<12} "
            f"{_fmt_pct(imp.modeled_drop):>12} "
            f"{_fmt_pct(imp.wall_slowdown):>13} "
            f"{_fmt_pct(imp.dma_increase):>13}  {signal}"
        )
    return "\n".join(lines)
