"""Run-matrix generation: baseline plus one-component-off configs.

The matrix is the classic ablation shape (AE-Scientist's
``stage4_ablation``): one fully-on baseline, then one run per
(component, off-value) pair, each differing from the baseline in
*exactly one* component — the property the importance ranker needs to
attribute a metric delta to a single switch, and the property the unit
tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.ablate.config import AblationConfig
from repro.core.variants import get_variant
from repro.errors import ConfigError
from repro.tuning.search import enumerate_candidates

__all__ = ["AblationRun", "build_matrix", "default_blocking_alternatives"]

#: stage ladder order, used to pick the "off" stages below a baseline.
_STAGE_LADDER = ("RAW", "PE", "ROW", "DB", "SCHED")


@dataclass(frozen=True)
class AblationRun:
    """One scheduled run: a config plus its place in the matrix."""

    run_id: str
    #: ``"baseline"`` or the single component this run switches off.
    component: str
    #: human label of the off-value (e.g. ``"DB"``, ``"device"``).
    value: str
    config: AblationConfig

    def as_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "component": self.component,
            "value": self.value,
            "config": self.config.as_dict(),
        }


def default_blocking_alternatives(
    baseline: AblationConfig, count: int = 2
) -> list[tuple[int, int, int]]:
    """Deterministic alternative blocking triples for the blocking axis.

    Drawn from :func:`~repro.tuning.search.enumerate_candidates` (so
    every alternative is LDM-feasible for the baseline variant's
    buffering regime): the first feasible triple and evenly spaced
    picks after it, skipping the baseline's own.
    """
    traits = get_variant(baseline.variant).traits
    feasible = [
        (p.p_m, p.p_n, p.p_k)
        for p in enumerate_candidates(
            double_buffered=bool(traits.double_buffered), p_n_step=8
        )
        if (p.p_m, p.p_n, p.p_k) != baseline.blocking
    ]
    if not feasible:
        return []
    step = max(1, len(feasible) // max(count, 1))
    picks = feasible[::step][:count]
    return picks


def build_matrix(
    baseline: AblationConfig | None = None,
    *,
    stages: Sequence[str] | None = None,
    engines: Sequence[str] = ("device",),
    policies: Sequence[str] = ("round_robin",),
    include_retry: bool = True,
    include_parallel: bool = True,
    blocking_alternatives: Sequence[tuple[int, int, int]] | None = None,
) -> list[AblationRun]:
    """The run matrix: baseline first, then one run per off-value.

    ``stages`` defaults to every ladder stage below the baseline
    variant (for SCHED: DB, ROW, PE, RAW).  ``engines``/``policies``
    list the off-values for those axes (baseline's own value is
    skipped if listed).  ``include_retry``/``include_parallel`` add the
    boolean off-runs when the baseline has the feature on.
    ``blocking_alternatives`` defaults to two deterministic feasible
    triples from the candidate enumeration.
    """
    baseline = baseline or AblationConfig()
    runs = [
        AblationRun(
            run_id=baseline.run_id(),
            component="baseline",
            value="baseline",
            config=baseline,
        )
    ]
    if stages is None:
        if baseline.variant in _STAGE_LADDER:
            position = _STAGE_LADDER.index(baseline.variant)
            stages = tuple(reversed(_STAGE_LADDER[:position]))
        else:
            stages = ()
    seen = {baseline.run_id()}

    def add(component: str, value: str, config: AblationConfig) -> None:
        run_id = config.run_id()
        if run_id in seen:
            raise ConfigError(
                f"ablation matrix collision: {component}={value} "
                f"reproduces an existing config ({run_id})"
            )
        seen.add(run_id)
        runs.append(
            AblationRun(
                run_id=run_id, component=component, value=value, config=config
            )
        )

    for stage in stages:
        stage = str(stage).upper()
        if stage == baseline.variant:
            continue
        add("stage", stage, baseline.with_component("stage", stage))
    for engine in engines:
        engine = str(engine).lower()
        if engine == baseline.engine:
            continue
        add("engine", engine, baseline.with_component("engine", engine))
    for policy in policies:
        policy = str(policy).lower()
        if policy == baseline.policy:
            continue
        add("scheduler", policy, baseline.with_component("scheduler", policy))
    if include_retry and baseline.retry:
        add("retry", "off", baseline.with_component("retry", False))
    if include_parallel and baseline.parallel:
        add("parallel", "off", baseline.with_component("parallel", False))
    if blocking_alternatives is None:
        blocking_alternatives = default_blocking_alternatives(baseline)
    for triple in blocking_alternatives:
        triple = tuple(int(x) for x in triple)
        if triple == baseline.blocking:
            continue
        add(
            "blocking",
            f"{triple[0]}x{triple[1]}x{triple[2]}",
            baseline.with_component("blocking", triple),
        )
    return runs
