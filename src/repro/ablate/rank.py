"""Importance ranking: per-component metric deltas vs the baseline.

Each off-run is compared against the baseline run on the three captured
metrics; a component's importance is the worst (largest) modeled
Gflop/s drop among its off-values.  Components whose off-values leave
the modeled figure untouched (retry and parallel dispatch change
nothing the hardware model can see on a fault-free run) are ranked by
their wall-clock slowdown instead, and always sort below any component
with a real modeled drop — the report then reads top-down as "what
costs paper-performance" before "what costs simulation time".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.ablate.executor import RunMetrics
from repro.errors import ConfigError

__all__ = ["ComponentImportance", "RunDelta", "rank_importance"]

#: relative modeled drops below this are treated as model-invisible.
_MODELED_EPSILON = 1e-9


def _relative_drop(baseline: float, off: float) -> float:
    """``(baseline - off) / baseline``: positive when switching off hurts."""
    if baseline <= 0:
        return 0.0
    return (baseline - off) / baseline


@dataclass(frozen=True)
class RunDelta:
    """One off-run's metrics relative to the baseline."""

    run_id: str
    component: str
    value: str
    modeled_gflops: float
    #: relative modeled Gflop/s drop vs baseline (positive = worse).
    modeled_drop: float
    wall_p50_seconds: float
    #: relative wall p50 increase vs baseline (positive = slower).
    wall_slowdown: float
    dma_bytes: int
    #: relative DMA byte increase vs baseline (positive = more traffic).
    dma_increase: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "component": self.component,
            "value": self.value,
            "modeled_gflops": self.modeled_gflops,
            "modeled_drop": self.modeled_drop,
            "wall_p50_seconds": self.wall_p50_seconds,
            "wall_slowdown": self.wall_slowdown,
            "dma_bytes": self.dma_bytes,
            "dma_increase": self.dma_increase,
        }


@dataclass(frozen=True)
class ComponentImportance:
    """One component's aggregate importance over its off-values."""

    component: str
    #: off-value with the largest modeled drop (or wall slowdown).
    worst_value: str
    #: the component's worst relative modeled Gflop/s drop.
    modeled_drop: float
    #: the component's worst relative wall slowdown.
    wall_slowdown: float
    #: the component's worst relative DMA increase.
    dma_increase: float
    #: True when the modeled drop is the ranking signal, False when the
    #: component is model-invisible and ranked by wall slowdown.
    modeled: bool
    deltas: tuple[RunDelta, ...]

    @property
    def score(self) -> float:
        """The ranking key: modeled drop when visible, else slowdown."""
        return self.modeled_drop if self.modeled else self.wall_slowdown

    def as_dict(self) -> dict[str, Any]:
        return {
            "component": self.component,
            "worst_value": self.worst_value,
            "modeled_drop": self.modeled_drop,
            "wall_slowdown": self.wall_slowdown,
            "dma_increase": self.dma_increase,
            "modeled": self.modeled,
            "score": self.score,
            "runs": [delta.as_dict() for delta in self.deltas],
        }


def run_deltas(
    baseline: RunMetrics, results: Sequence[RunMetrics]
) -> list[RunDelta]:
    """Per-run deltas vs baseline, skipping the baseline itself."""
    deltas = []
    for metrics in results:
        if metrics.component == "baseline":
            continue
        deltas.append(
            RunDelta(
                run_id=metrics.run_id,
                component=metrics.component,
                value=metrics.value,
                modeled_gflops=metrics.modeled_gflops,
                modeled_drop=_relative_drop(
                    baseline.modeled_gflops, metrics.modeled_gflops
                ),
                wall_p50_seconds=metrics.wall_p50_seconds,
                wall_slowdown=-_relative_drop(
                    baseline.wall_p50_seconds, metrics.wall_p50_seconds
                ),
                dma_bytes=metrics.dma_bytes,
                dma_increase=-_relative_drop(
                    float(baseline.dma_bytes), float(metrics.dma_bytes)
                ),
            )
        )
    return deltas


def rank_importance(
    baseline: RunMetrics, results: Sequence[RunMetrics]
) -> list[ComponentImportance]:
    """Components ranked most-important first.

    Modeled-visible components sort above model-invisible ones; within
    each class, larger score first.  Ties break on component name for a
    deterministic report.
    """
    if baseline.component != "baseline":
        raise ConfigError(
            f"baseline metrics must carry component='baseline', "
            f"got {baseline.component!r}"
        )
    by_component: dict[str, list[RunDelta]] = {}
    for delta in run_deltas(baseline, results):
        by_component.setdefault(delta.component, []).append(delta)
    ranked = []
    for component, deltas in by_component.items():
        worst = max(deltas, key=lambda d: d.modeled_drop)
        modeled = worst.modeled_drop > _MODELED_EPSILON
        if not modeled:
            worst = max(deltas, key=lambda d: d.wall_slowdown)
        ranked.append(
            ComponentImportance(
                component=component,
                worst_value=worst.value,
                modeled_drop=max(d.modeled_drop for d in deltas),
                wall_slowdown=max(d.wall_slowdown for d in deltas),
                dma_increase=max(d.dma_increase for d in deltas),
                modeled=modeled,
                deltas=tuple(deltas),
            )
        )
    ranked.sort(key=lambda c: (not c.modeled, -c.score, c.component))
    return ranked
