"""Command-line front end: run a simulated DGEMM from the shell.

Installed as ``repro-dgemm``::

    repro-dgemm --m 256 --n 128 --k 256 --variant SCHED --check
    repro-dgemm --preset paper --variant DB --estimate-only
    repro-dgemm --m 512 --n 512 --k 1536 --gantt
    repro-dgemm schedule --items 16 --cgs 4
    repro-dgemm trace --items 8 --cgs 4 --out trace.json --report
    repro-dgemm chaos --items 12 --fault dma.get:nth=3 --fault cg:nth=1
    repro-dgemm chaos --smoke
    repro-dgemm serve --requests 32 --concurrency 32
    repro-dgemm serve --smoke --metrics-out scrape.prom
    repro-dgemm metrics --items 8 --out scrape1.prom --out2 scrape2.prom
    repro-dgemm metrics --url http://127.0.0.1:9464/metrics
    repro-dgemm top --requests 24 --interval 0.5
    repro-dgemm top --once
    repro-dgemm ablate --items 8 --reps 3 --out ablation.json
    repro-dgemm ablate --smoke
    repro-dgemm tune --shape 512x256x512 --out TUNED.json
    repro-dgemm tune --smoke

``--estimate-only`` skips the functional simulation and prints the
performance model's prediction (any paper-scale size is fine there);
functional runs execute on the device model and verify against numpy.
The ``schedule`` subcommand dispatches a mixed-shape batch across the
chip's core-group pool and reports the per-CG split, the modeled
makespan vs. the serial single-CG time, and the load-balance
efficiency.  The ``trace`` subcommand runs a traced session batch and
exports the span tree as a Chrome trace (load it at ui.perfetto.dev)
or JSONL, reconciling span counter deltas against the session totals
before it reports success.  The ``chaos`` subcommand runs the same
batch twice — fault-free, then with the requested faults armed — and
verifies the resilience contract: every recovered item is
*bit-identical* to the fault-free run, and every non-recovered item
carries a structured error instead of a wrong answer.  The ``serve``
subcommand stands up the asyncio serving tier, drives it with the
seeded load generator, then verifies the serving contract: zero
dropped responses, same-bin coalescing (strictly fewer dispatched
batches than batch-path requests), a cache wave served without
touching the device, and per-request span traffic reconciling
bit-exactly with the session totals — optionally scraping its own
OpenMetrics endpoint mid-run and at shutdown (``--metrics-out`` /
``--metrics-out2``) for ``tools/check_metrics.py``.  The ``metrics``
subcommand takes one-shot OpenMetrics scrapes: either of a live
endpoint (``--url``) or of an internal sampled session run, dumping
one scrape per output file.  The ``top`` subcommand renders the live
terminal dashboard (throughput, per-CG DMA bars, cache hit rates,
SLO table, firing alerts) over an internally driven server;
``--once`` prints a single frame and exits.  The ``ablate`` subcommand
runs the systematic one-component-off matrix (:mod:`repro.ablate`) and
prints the importance ranking; ``--smoke`` is the CI gate asserting
the baseline beats every stage-off config on modeled Gflop/s.  The
``tune`` subcommand runs the closed autotuning loop
(:mod:`repro.tuning.loop`) — estimator prior, measured feedback — and
persists the learned table; ``--smoke`` additionally gates that a
table-consulting session is bit-exact vs explicit params and no slower
than the estimator-only fallback at measured p50.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.arch.core_group import CoreGroup
from repro.core.api import dgemm
from repro.core.params import BlockingParams
from repro.core.reference import reference_dgemm
from repro.core.variants import VARIANTS
from repro.errors import ReproError
from repro.perf.estimator import Estimator
from repro.resil import FAULT_SITES
from repro.workloads.matrices import gemm_operands

__all__ = [
    "build_ablate_parser",
    "build_chaos_parser",
    "build_metrics_parser",
    "build_parser",
    "build_schedule_parser",
    "build_serve_parser",
    "build_top_parser",
    "build_trace_parser",
    "build_tune_parser",
    "main",
    "parse_fault_spec",
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dgemm",
        description="DGEMM on a simulated SW26010 core group "
                    "(ICPP'17 reproduction)",
    )
    parser.add_argument("--m", type=int, default=None, help="rows of A/C")
    parser.add_argument("--n", type=int, default=None, help="columns of B/C")
    parser.add_argument("--k", type=int, default=None, help="inner dimension")
    parser.add_argument(
        "--variant", default="SCHED", choices=sorted(VARIANTS),
        type=lambda s: s.upper(), help="implementation (paper Sec V)",
    )
    parser.add_argument("--alpha", type=float, default=1.0)
    parser.add_argument("--beta", type=float, default=1.0)
    parser.add_argument(
        "--preset", choices=["small", "paper"], default="small",
        help="blocking parameters: scaled-down (default) or the paper's",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--pad", action="store_true",
                        help="zero-pad non-multiple shapes")
    parser.add_argument("--check", action="store_true",
                        help="verify against numpy (on by default for runs)")
    parser.add_argument("--estimate-only", action="store_true",
                        help="skip the functional run; print the model's view")
    parser.add_argument("--gantt", action="store_true",
                        help="render the modelled DMA/compute timeline")
    return parser


def build_schedule_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dgemm schedule",
        description="Dispatch a mixed-shape batch across the SW26010's "
                    "core-group pool (CGScheduler)",
    )
    parser.add_argument("--items", type=int, default=16,
                        help="number of batch items (default 16)")
    parser.add_argument("--cgs", type=int, default=4,
                        help="pool size, 1..4 core groups (default 4)")
    parser.add_argument(
        "--variant", default="SCHED", choices=sorted(VARIANTS),
        type=lambda s: s.upper(), help="implementation (paper Sec V)",
    )
    parser.add_argument(
        "--preset", choices=["small", "paper"], default="small",
        help="blocking parameters: scaled-down (default) or the paper's",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--estimate-only", action="store_true",
                        help="plan only: print the dispatch and modeled "
                             "timing without executing the batch")
    return parser


def _run_schedule(argv: list[str]) -> int:
    from repro.multi.scheduler import CGScheduler
    from repro.workloads.matrices import mixed_batch

    args = build_schedule_parser().parse_args(argv)
    params = _params_for(args)
    try:
        scheduler = CGScheduler(
            n_core_groups=args.cgs, variant=args.variant, params=params,
        )
        items = mixed_batch(args.items, params=params, seed=args.seed)
        if args.estimate_only:
            plan = scheduler.plan(items)
            counts = [0] * plan.n_core_groups
            for g in plan.assignments:
                counts[g] += 1
            per_cg = [
                (g, counts[g], plan.cg_seconds[g]) for g in range(args.cgs)
            ]
            errors_by_cg = {}
        else:
            result = scheduler.run(items)
            plan = result.plan
            per_cg = [
                (t.core_group, t.items, t.modeled_seconds)
                for t in result.per_cg
            ]
            errors_by_cg = {e.core_group: e for e in result.errors}
            print(f"executed {len(result)} items "
                  f"({len(result.errors)} failed), "
                  f"DMA {result.dma_bytes / 1e6:.2f} MB in "
                  f"{result.dma_transactions} transactions")
        for g, n_items, seconds in per_cg:
            bar = "#" * int(round(40 * seconds / max(plan.makespan_seconds, 1e-30)))
            suffix = "  [item failed]" if g in errors_by_cg else ""
            print(f"CG{g}: {n_items:3d} items  {seconds * 1e3:8.3f} ms  "
                  f"{bar}{suffix}")
        print(f"makespan {plan.makespan_seconds * 1e3:.3f} ms vs serial "
              f"{plan.serial_seconds * 1e3:.3f} ms -> modeled speedup "
              f"{plan.modeled_speedup:.2f}x on {args.cgs} CG(s), "
              f"load-balance efficiency "
              f"{100 * plan.load_balance_efficiency:.1f}%")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dgemm trace",
        description="Run a traced Session batch and export the span tree "
                    "as a Chrome trace (Perfetto) or JSONL",
    )
    parser.add_argument("--items", type=int, default=8,
                        help="number of batch items (default 8)")
    parser.add_argument("--cgs", type=int, default=4,
                        help="pool size, 1..4 core groups (default 4)")
    parser.add_argument(
        "--variant", default="SCHED", choices=sorted(VARIANTS),
        type=lambda s: s.upper(), help="implementation (paper Sec V)",
    )
    parser.add_argument(
        "--preset", choices=["small", "paper"], default="small",
        help="blocking parameters: scaled-down (default) or the paper's",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="trace.json",
                        help="output path (default trace.json)")
    parser.add_argument("--format", choices=["chrome", "jsonl"],
                        default="chrome",
                        help="chrome trace-event JSON (default) or one "
                             "span per JSONL line")
    parser.add_argument("--report", action="store_true",
                        help="also print the per-phase text report")
    parser.add_argument("--parallel", action="store_true",
                        help="dispatch the batch on per-CG worker threads "
                             "(the trace must still nest strictly per "
                             "track and reconcile bit-exactly)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny fixed workload (4 items, 2 CGs, small "
                             "preset) for CI; still reconciles counters")
    return parser


def _run_trace(argv: list[str]) -> int:
    from repro.core.session import Session
    from repro.obs import (
        SpanTracer, phase_report, write_chrome_trace, write_jsonl,
    )
    from repro.workloads.matrices import mixed_batch

    args = build_trace_parser().parse_args(argv)
    if args.smoke:
        args.items, args.cgs, args.preset = 4, 2, "small"
    params = _params_for(args)
    tracer = SpanTracer()
    try:
        with Session(
            variant=args.variant, params=params,
            n_core_groups=args.cgs, tracer=tracer,
        ) as session:
            items = mixed_batch(args.items, params=params, seed=args.seed)
            result = session.batch(items, parallel=args.parallel)
            totals = session.stats().traffic.as_dict()
        if result.errors:
            print(f"error: {len(result.errors)} batch item(s) failed",
                  file=sys.stderr)
            return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # every byte the session accounted must appear in exactly one
    # dgemm span's counter deltas — the trace is trustworthy only if
    # this reconciles bit-exactly.
    deltas = tracer.counter_totals("dgemm")
    mismatches = [
        f"{field}: spans={deltas.get(f'ctx.{field}', 0)!r} "
        f"session={total!r}"
        for field, total in totals.items()
        if deltas.get(f"ctx.{field}", 0) != total
    ]
    if mismatches:
        print("error: span counters do not reconcile with Session.stats():",
              file=sys.stderr)
        for line in mismatches:
            print(f"  {line}", file=sys.stderr)
        return 1

    if args.format == "chrome":
        write_chrome_trace(tracer.spans, args.out,
                           label=f"repro {args.variant} x{args.items}")
    else:
        write_jsonl(tracer.spans, args.out)
    print(f"{len(tracer.spans)} spans over {args.cgs} CG(s), "
          f"{tracer.total_seconds('session.batch') * 1e3:.3f} ms wall; "
          f"counters reconcile "
          f"with Session.stats() ({len(totals)} fields)")
    print(f"wrote {args.format} trace to {args.out}")
    if args.report:
        print()
        print(phase_report(tracer.spans))
    return 0


def parse_fault_spec(text: str):
    """Parse a ``--fault`` argument into a :class:`repro.resil.FaultSpec`.

    Syntax: ``site[:key=value]*`` with keys ``nth``, ``p`` (alias
    ``prob``/``probability``), ``cg``, ``phase``, ``max`` (alias
    ``max_fires``); a bare site defaults to ``nth=1`` (fault the first
    eligible call).  Examples::

        dma.get:nth=3          compute:p=0.05:max=2
        cg:nth=1:cg=2          regcomm:p=1.0:phase=kernel
    """
    from repro.errors import ConfigError
    from repro.resil import FaultSpec

    parts = [p.strip() for p in str(text).split(":")]
    site, kwargs = parts[0], {}
    for part in parts[1:]:
        key, sep, value = part.partition("=")
        key = key.strip().lower()
        if not sep:
            raise ConfigError(f"fault option {part!r} is not key=value")
        if key in ("p", "prob", "probability"):
            kwargs["probability"] = float(value)
        elif key == "nth":
            kwargs["nth"] = int(value)
        elif key == "cg":
            kwargs["cg"] = int(value)
        elif key == "phase":
            kwargs["phase"] = value.strip()
        elif key in ("max", "max_fires"):
            kwargs["max_fires"] = int(value)
        else:
            raise ConfigError(f"unknown fault option {key!r} in {text!r}")
    if "probability" not in kwargs and "nth" not in kwargs:
        kwargs["nth"] = 1
    return FaultSpec(site, **kwargs)


def build_chaos_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dgemm chaos",
        description="Chaos-test the Session/scheduler stack: inject "
                    "faults into a batch and verify bit-exact recovery",
    )
    parser.add_argument("--items", type=int, default=12,
                        help="number of batch items (default 12)")
    parser.add_argument("--cgs", type=int, default=4,
                        help="pool size, 1..4 core groups (default 4)")
    parser.add_argument(
        "--variant", default="SCHED", choices=sorted(VARIANTS),
        type=lambda s: s.upper(), help="implementation (paper Sec V)",
    )
    parser.add_argument(
        "--preset", choices=["small", "paper"], default="small",
        help="blocking parameters: scaled-down (default) or the paper's",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed (default 0)")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="injector seed for probability triggers")
    parser.add_argument(
        "--fault", action="append", default=[], metavar="SPEC",
        help="armed fault, repeatable: site[:nth=N][:p=P][:cg=G]"
             "[:phase=NAME][:max=M]; bare site means nth=1 "
             f"(sites: {', '.join(FAULT_SITES)})",
    )
    parser.add_argument("--retries", type=int, default=2,
                        help="max retries per faulted item (default 2)")
    parser.add_argument("--no-fallback", action="store_true",
                        help="disable the engine-degradation rung")
    parser.add_argument("--strict", action="store_true",
                        help="also fail when any item exhausts the ladder "
                             "(default only fails on a wrong answer)")
    parser.add_argument("--smoke", action="store_true",
                        help="fixed recoverable fault schedule across "
                             "every site (6 items, 2 CGs) for CI; "
                             "implies --strict")
    return parser


def _run_chaos(argv: list[str]) -> int:
    from repro.core.session import Session
    from repro.resil import FaultInjector, FaultSpec, RetryPolicy
    from repro.workloads.matrices import mixed_batch

    args = build_chaos_parser().parse_args(argv)
    if args.smoke:
        args.items, args.cgs, args.preset, args.strict = 6, 2, "small", True
        # the one-shot specs can all land on one item's retry chain
        # (each retry trips the next armed spec), so the budget must
        # cover the full schedule for the run to be recoverable.
        args.retries = max(args.retries, 6)
        if not args.fault:
            args.fault = [
                "memory.store:nth=2",
                "dma.get:nth=2",
                "dma.put:nth=1",
                "regcomm:nth=3",
                "compute:nth=2",
                "cg:nth=1",
            ]
    if not args.fault:
        print("error: no --fault specs armed (or use --smoke)",
              file=sys.stderr)
        return 2
    params = _params_for(args)
    policy = RetryPolicy(max_retries=args.retries) if args.retries else None
    fallback = None if args.no_fallback else "auto"
    try:
        specs = [parse_fault_spec(text) for text in args.fault]
        items = mixed_batch(args.items, params=params, seed=args.seed)

        # fault-free reference run: same workload, same engines, no
        # injector — the bit-exactness baseline.
        with Session(variant=args.variant, params=params,
                     n_core_groups=args.cgs) as session:
            baseline = session.batch(items)
        if not baseline.ok:
            print("error: fault-free baseline run failed", file=sys.stderr)
            return 2

        injector = FaultInjector(specs, seed=args.fault_seed)
        with Session(variant=args.variant, params=params,
                     n_core_groups=args.cgs, injector=injector,
                     retry_policy=policy,
                     fallback_engine=fallback) as session:
            result = session.batch(items)
            resil = session.resil_stats()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # items recovered on the fallback engine ran different (equally
    # correct) arithmetic, so they match the baseline to 1e-12 rather
    # than bit-for-bit; everything else must be bit-identical.
    fellback = {
        r.index for r in result.fault_reports
        if r.recovered and r.fallback_engine
    }
    mismatched = []
    for i, out in enumerate(result.outputs):
        if out is None:
            continue
        ref = baseline.outputs[i]
        same = (np.allclose(out, ref, rtol=1e-12, atol=1e-9)
                if i in fellback else np.array_equal(out, ref))
        if not same:
            mismatched.append(i)
    injection = resil.get("injection", {})
    print(f"injected {injection.get('injected', 0)} fault(s) over "
          f"{injection.get('calls', 0)} fire-point calls "
          f"({len(specs)} spec(s), seed {args.fault_seed})")
    for report in result.fault_reports:
        if report.recovered:
            outcome = "recovered"
            if report.index in mismatched:
                outcome = "RECOVERED WITH WRONG ANSWER"
        else:
            outcome = f"exhausted ({report.error_kind})"
        extras = [f"attempts={report.attempts}"]
        if report.retries:
            extras.append(f"retries={report.retries}")
        if report.fallback_engine:
            extras.append(f"fallback={report.fallback_engine}")
        if report.quarantined_cgs:
            extras.append(f"quarantined={list(report.quarantined_cgs)}")
        print(f"  item {report.index:3d}  {report.site or '-':<13} "
              f"{' '.join(extras)}  -> {outcome}")
    if result.quarantined:
        print(f"quarantined CGs {list(result.quarantined)}; "
              f"{result.healthy_core_groups} healthy; load-balance "
              f"efficiency {100 * result.load_balance_efficiency:.1f}% "
              "(healthy CGs only)")
    recovered = len(result.recovered)
    exhausted = len(result.fault_reports) - recovered
    print(f"{recovered} recovered / {exhausted} exhausted of "
          f"{len(result.fault_reports)} disturbed item(s); "
          f"{resil['retries']} retries, {resil['fallbacks']} fallback(s), "
          f"{resil['respilled']} respill(s), "
          f"{resil['backoff_seconds'] * 1e6:.2f} us modeled backoff")
    if mismatched:
        print(f"error: item(s) {mismatched} recovered with outputs that "
              "differ from the fault-free run", file=sys.stderr)
        return 1
    print("every recovered item matches the fault-free run "
          + ("(bit-identical; fallback items to rtol=1e-12)"
             if fellback else "(bit-identical)"))
    if exhausted and args.strict:
        print(f"error: --strict and {exhausted} item(s) exhausted the "
              "recovery ladder", file=sys.stderr)
        return 1
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dgemm serve",
        description="Drive the asyncio serving tier (repro.serve) with a "
                    "seeded mixed workload and verify the serving contract",
    )
    parser.add_argument("--requests", type=int, default=32,
                        help="requests in the main wave (default 32)")
    parser.add_argument("--concurrency", type=int, default=32,
                        help="concurrent client submissions (default 32)")
    parser.add_argument("--cgs", type=int, default=4,
                        help="pool size, 1..4 core groups (default 4)")
    parser.add_argument(
        "--variant", default="SCHED", choices=sorted(VARIANTS),
        type=lambda s: s.upper(), help="implementation (paper Sec V)",
    )
    parser.add_argument(
        "--preset", choices=["small", "paper"], default="small",
        help="blocking parameters: scaled-down (default) or the paper's",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--window", type=float, default=0.05,
                        help="coalescing window in seconds (default 0.05; "
                             "0 disables coalescing)")
    parser.add_argument("--batch", type=int, default=8,
                        help="max requests per dispatched batch (default 8)")
    parser.add_argument("--pending", type=int, default=64,
                        help="admission bound on in-flight requests "
                             "(default 64)")
    parser.add_argument("--cache-wave", type=int, default=4,
                        help="earlier requests resubmitted after the main "
                             "wave to exercise the operand cache (default 4)")
    parser.add_argument("--engine", choices=["device", "vectorized",
                                             "stepwise"], default=None,
                        help="execution engine for the serving session "
                             "(default: the session's per-path choice)")
    parser.add_argument("--sampler-period", type=float, default=0.01,
                        help="metrics sampler period in seconds "
                             "(default 0.01; 0 disables sampling)")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="scrape the server's OpenMetrics endpoint "
                             "after the main wave and write it here")
    parser.add_argument("--metrics-out2", default=None, metavar="FILE",
                        help="second scrape, taken after all waves "
                             "(check_metrics.py compares the pair for "
                             "counter monotonicity)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fixed workload (12 requests, 2 CGs, "
                             "stepwise engine) for CI; same contract "
                             "checks plus plan-cache counters and a "
                             "validated OpenMetrics scrape")
    return parser


async def _scrape_openmetrics(address: tuple[str, int]) -> str:
    """GET /metrics from a running exposition endpoint, over real HTTP."""
    import asyncio

    host, port = address
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET /metrics HTTP/1.1\r\nHost: {host}\r\n"
            "Connection: close\r\n\r\n".encode("latin-1")
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = head.split(b"\r\n", 1)[0].decode("latin-1", "replace")
    if " 200 " not in f"{status} ":
        raise ReproError(f"metrics endpoint answered {status!r}")
    return body.decode("utf-8")


def _parse_scrape(text: str) -> dict[str, float]:
    """Sample lines of an OpenMetrics scrape as ``{name: value}``.

    Ints parse as ints so bit-exact comparison against integer session
    counters holds; histogram bucket lines (with labels) keep their
    ``{...}`` in the name and are simply never looked up.
    """
    out: dict[str, float] = {}
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        name, _, value = line.rpartition(" ")
        try:
            out[name] = int(value)
        except ValueError:
            try:
                out[name] = float(value)
            except ValueError:
                continue
    return out


async def _serve_session(args) -> int:
    from repro.serve import LoadGenerator, ReproServer, ServeConfig

    params = _params_for(args)
    # --smoke always arms the endpoint so CI exercises a real scrape
    # even when no output files were requested.
    scraping = bool(args.metrics_out or args.metrics_out2 or args.smoke)
    config = ServeConfig(
        window_seconds=args.window,
        max_batch_size=args.batch,
        max_pending=args.pending,
        sampler_period_seconds=args.sampler_period or None,
        metrics_port=0 if scraping else None,
    )
    async with ReproServer(
        config=config, variant=args.variant, params=params,
        n_core_groups=args.cgs, engine=args.engine,
    ) as server:
        generator = LoadGenerator(seed=args.seed, params=params)
        requests = generator.generate(args.requests)
        results = await generator.run(
            server, requests, concurrency=args.concurrency
        )

        dropped = args.requests - len(results)
        failed = [r for r in results if not r.ok]
        print(f"{len(results)} responses to {args.requests} requests "
              f"({dropped} dropped, {len(failed)} failed, "
              f"{sum(r.cache_hit for r in results)} cache hits) over "
              f"{server.stats()['batches']} dispatched batches")
        if dropped or failed:
            print("error: serving contract violated "
                  f"({dropped} dropped, {len(failed)} failed)",
                  file=sys.stderr)
            return 1

        # mid-run scrape: the exposition endpoint must answer while
        # the server keeps serving (the second scrape at the end lets
        # check_metrics.py verify counter monotonicity).
        scrape1 = None
        if scraping:
            assert server.metrics_address is not None
            scrape1 = await _scrape_openmetrics(server.metrics_address)

        # cache wave: resubmitting completed requests must be served
        # from the operand cache without touching the device.
        wave = requests[: args.cache_wave]
        if wave:
            replays = await generator.run(server, wave, concurrency=4)
            misses = [r for r in replays if not (r.ok and r.cache_hit)]
            print(f"cache wave: {len(replays) - len(misses)}/{len(wave)} "
                  "served from cache")
            if misses:
                print("error: cache wave missed the operand cache",
                      file=sys.stderr)
                return 1

        # plan cache: a *fresh* same-shape request (new operands, so
        # the operand cache cannot serve it) must hit the compiled
        # plan, not rebuild it — one build per shape bin per session.
        if server.session.engine == "stepwise":
            from repro.api import GemmRequest

            before = server.session.plan_cache.stats()
            template = next(
                r for r in requests if isinstance(r, GemmRequest)
            )
            rng = np.random.default_rng(len(requests))
            fresh = GemmRequest(
                a=rng.standard_normal(np.asarray(template.a).shape),
                b=rng.standard_normal(np.asarray(template.b).shape),
            )
            resp = await server.submit(fresh)
            after = server.session.plan_cache.stats()
            print(f"plan cache: {after.builds} builds, {after.hits} hits, "
                  f"{after.bytes} bytes resident")
            if not resp.ok or resp.cache_hit:
                print("error: fresh same-shape request did not execute",
                      file=sys.stderr)
                return 1
            if after.builds != before.builds or after.hits <= before.hits:
                print("error: plan cache rebuilt (or missed) on a "
                      f"same-shape resubmit: builds {before.builds} -> "
                      f"{after.builds}, hits {before.hits} -> {after.hits}",
                      file=sys.stderr)
                return 1

        # coalescing: with a window armed, same-bin requests must share
        # dispatches — strictly fewer session.batch spans than
        # batch-path (non-LU) requests.
        tracer = server.session.tracer
        batch_spans = sum(
            1 for s in tracer.spans if s.name == "session.batch"
        )
        batch_path = sum(
            1 for s in tracer.spans if s.name == "serve.request"
        ) - sum(1 for r in results if r.bin.startswith("lu:"))
        if args.window > 0 and batch_spans >= batch_path:
            print(f"error: no coalescing — {batch_spans} dispatches for "
                  f"{batch_path} batch-path requests", file=sys.stderr)
            return 1
        print(f"coalescing: {batch_path} batch-path requests ran in "
              f"{batch_spans} session.batch dispatches")

        # the reconciliation contract: summing every serve.request
        # span's traffic delta must equal Session.stats() bit-exactly.
        deltas = tracer.counter_totals("serve.request")
        totals = server.session.stats().traffic.as_dict()
        mismatched = [
            f"{field}: spans={deltas.get(f'ctx.{field}', 0)!r} "
            f"session={total!r}"
            for field, total in totals.items()
            if deltas.get(f"ctx.{field}", 0) != total
        ]
        if mismatched:
            print("error: per-request traffic does not reconcile with "
                  "Session.stats():", file=sys.stderr)
            for line in mismatched:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"per-request span traffic reconciles with Session.stats() "
              f"({len(totals)} fields)")

        if server.sampler is not None:
            sampled = server.sampler.stats()
            print(f"sampler: {sampled['samples']:.0f} samples over "
                  f"{sampled['series']:.0f} series at "
                  f"{sampled['period_seconds'] * 1e3:.0f} ms "
                  f"({sampled['errors']:.0f} errors)")
            if sampled["errors"]:
                print("error: the metrics sampler recorded source errors",
                      file=sys.stderr)
                return 1

        if scraping:
            from repro.obs.promexp import metric_name

            assert server.metrics_address is not None
            scrape2 = await _scrape_openmetrics(server.metrics_address)
            # the scraped text must reconcile bit-exactly too: the
            # serve.request counter totals render via repr/str, so
            # parsing them back recovers the exact session counters.
            parsed = _parse_scrape(scrape2)
            bad = [
                f"{field}: scraped={parsed.get(name)!r} session={total!r}"
                for field, total in server.session.stats()
                .traffic.as_dict().items()
                for name in [
                    metric_name(f"serve.request.ctx.{field}") + "_total"
                ]
                if parsed.get(name) != total
            ]
            if bad:
                print("error: scraped OpenMetrics counters do not "
                      "reconcile with Session.stats():", file=sys.stderr)
                for line in bad:
                    print(f"  {line}", file=sys.stderr)
                return 1
            print("scraped serve.request counters reconcile with "
                  "Session.stats()")
            for path, text in ((args.metrics_out, scrape1),
                               (args.metrics_out2, scrape2)):
                if path and text is not None:
                    with open(path, "w", encoding="utf-8") as handle:
                        handle.write(text)
                    print(f"wrote OpenMetrics scrape to {path}")

        if server.alerts is not None and server.alerts.active():
            for alert in server.alerts.active():
                print(f"ALERT [{alert.severity}] {alert.rule}: "
                      f"{alert.message}")

        print()
        print(server.slo.render())
    return 0


def _run_serve(argv: list[str]) -> int:
    import asyncio

    args = build_serve_parser().parse_args(argv)
    if args.smoke:
        args.requests, args.cgs, args.preset = 12, 2, "small"
        args.concurrency = 12
        # exercise the plan-compiled engine so the smoke run verifies
        # the plan-cache counters (unless an engine was forced).
        args.engine = args.engine or "stepwise"
    try:
        return asyncio.run(_serve_session(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def build_metrics_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dgemm metrics",
        description="Take one-shot OpenMetrics scrapes: of a live "
                    "exposition endpoint (--url) or of an internal "
                    "sampled session run",
    )
    parser.add_argument("--url", default=None,
                        help="scrape a running endpoint "
                             "(http://host:port/metrics) instead of "
                             "running a workload")
    parser.add_argument("--items", type=int, default=8,
                        help="batch items per half of the internal run "
                             "(default 8)")
    parser.add_argument("--cgs", type=int, default=2,
                        help="pool size, 1..4 core groups (default 2)")
    parser.add_argument(
        "--variant", default="SCHED", choices=sorted(VARIANTS),
        type=lambda s: s.upper(), help="implementation (paper Sec V)",
    )
    parser.add_argument(
        "--preset", choices=["small", "paper"], default="small",
        help="blocking parameters: scaled-down (default) or the paper's",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--period", type=float, default=0.01,
                        help="sampler period in seconds (default 0.01)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the (first) scrape here instead of "
                             "stdout")
    parser.add_argument("--out2", default=None, metavar="FILE",
                        help="write a second scrape, taken after the "
                             "second half of the run, for counter-"
                             "monotonicity checks")
    return parser


def _run_metrics(argv: list[str]) -> int:
    from repro.core.session import Session
    from repro.obs import MetricsSampler, render_openmetrics
    from repro.workloads.matrices import mixed_batch

    args = build_metrics_parser().parse_args(argv)

    def deliver(text: str, path: str | None) -> None:
        if path:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote OpenMetrics scrape to {path} "
                  f"({len(text.splitlines())} lines)")
        else:
            print(text, end="")

    if args.url:
        from urllib.parse import urlsplit

        parts = urlsplit(args.url)
        if not parts.hostname or not parts.port:
            print(f"error: --url needs host and port, got {args.url!r}",
                  file=sys.stderr)
            return 2
        import asyncio

        try:
            text = asyncio.run(
                _scrape_openmetrics((parts.hostname, parts.port))
            )
        except (OSError, ReproError) as exc:
            print(f"error: scrape failed: {exc}", file=sys.stderr)
            return 2
        deliver(text, args.out)
        return 0

    params = _params_for(args)
    try:
        with Session(
            variant=args.variant, params=params, n_core_groups=args.cgs,
        ) as session:
            sampler = MetricsSampler(
                session.metrics_registry(), period_seconds=args.period,
            )
            with sampler:
                items = mixed_batch(
                    2 * args.items, params=params, seed=args.seed
                )
                session.batch(items[: args.items], parallel=True)
                first = render_openmetrics(sampler.sample_once())
                session.batch(items[args.items:], parallel=True)
            second = render_openmetrics(sampler.sample_once())
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    deliver(first, args.out)
    if args.out2:
        deliver(second, args.out2)
    return 0


def build_top_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dgemm top",
        description="Live terminal dashboard over a self-driven serving "
                    "tier: throughput, per-CG DMA bars, cache hit "
                    "rates, SLOs, firing alerts",
    )
    parser.add_argument("--requests", type=int, default=16,
                        help="requests per generated wave (default 16)")
    parser.add_argument("--concurrency", type=int, default=16,
                        help="concurrent client submissions (default 16)")
    parser.add_argument("--cgs", type=int, default=4,
                        help="pool size, 1..4 core groups (default 4)")
    parser.add_argument(
        "--variant", default="SCHED", choices=sorted(VARIANTS),
        type=lambda s: s.upper(), help="implementation (paper Sec V)",
    )
    parser.add_argument(
        "--preset", choices=["small", "paper"], default="small",
        help="blocking parameters: scaled-down (default) or the paper's",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--window", type=float, default=0.02,
                        help="coalescing window in seconds (default 0.02)")
    parser.add_argument("--engine", choices=["device", "vectorized",
                                             "stepwise"], default=None,
                        help="execution engine for the serving session")
    parser.add_argument("--period", type=float, default=0.01,
                        help="sampler period in seconds (default 0.01)")
    parser.add_argument("--interval", type=float, default=0.5,
                        help="seconds between dashboard frames "
                             "(default 0.5)")
    parser.add_argument("--frames", type=int, default=10,
                        help="frames to render before exiting "
                             "(default 10)")
    parser.add_argument("--once", action="store_true",
                        help="drive one wave, print a single frame, exit "
                             "(what the tests run)")
    return parser


async def _top_session(args) -> int:
    import asyncio

    from repro.obs.dashboard import render_dashboard
    from repro.serve import LoadGenerator, ReproServer, ServeConfig

    params = _params_for(args)
    config = ServeConfig(
        window_seconds=args.window,
        sampler_period_seconds=args.period,
    )
    async with ReproServer(
        config=config, variant=args.variant, params=params,
        n_core_groups=args.cgs, engine=args.engine,
    ) as server:
        assert server.sampler is not None
        generator = LoadGenerator(seed=args.seed, params=params)
        requests = generator.generate(args.requests)

        def frame() -> str:
            return render_dashboard(
                server.sampler,
                slo_table=server.slo.render(),
                alerts=server.alerts,
                events=server.events,
            )

        if args.once:
            await generator.run(
                server, requests, concurrency=args.concurrency
            )
            server.sampler.sample_once()
            print(frame())
            return 0

        stopping = asyncio.Event()

        async def drive() -> None:
            while not stopping.is_set():
                await generator.run(
                    server, requests, concurrency=args.concurrency
                )

        driver = asyncio.create_task(drive(), name="repro-top-load")
        try:
            for _ in range(max(1, args.frames)):
                await asyncio.sleep(args.interval)
                if sys.stdout.isatty():  # pragma: no cover - terminal only
                    print("\x1b[2J\x1b[H", end="")
                print(frame())
                print()
        finally:
            stopping.set()
            await driver
    return 0


def _run_top(argv: list[str]) -> int:
    import asyncio

    args = build_top_parser().parse_args(argv)
    try:
        return asyncio.run(_top_session(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def build_ablate_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dgemm ablate",
        description="Run the systematic ablation matrix (baseline + "
                    "one-component-off configs) and rank component "
                    "importance from metric deltas",
    )
    parser.add_argument("--items", type=int, default=8,
                        help="batch items in the shared workload "
                             "(default 8)")
    parser.add_argument("--reps", type=int, default=3,
                        help="timed batch repetitions per run (default 3)")
    parser.add_argument("--cgs", type=int, default=4,
                        help="pool size, 1..4 core groups (default 4)")
    parser.add_argument(
        "--variant", default="SCHED", choices=sorted(VARIANTS),
        type=lambda s: s.upper(),
        help="baseline optimization stage (default SCHED)",
    )
    parser.add_argument(
        "--engine", choices=["device", "stepwise", "vectorized"],
        default="stepwise", help="baseline engine (default stepwise)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="also write the JSON report here")
    parser.add_argument("--progress", action="store_true",
                        help="print one line per executed run")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny matrix (6 items, 2 reps, 2 CGs) for "
                             "CI; asserts the baseline beats every "
                             "stage-off config on modeled Gflop/s")
    return parser


def _run_ablate(argv: list[str]) -> int:
    from repro.ablate import AblationConfig, render_report, run_ablation

    args = build_ablate_parser().parse_args(argv)
    if args.smoke:
        args.items, args.reps, args.cgs = 6, 2, 2
    try:
        baseline = AblationConfig(
            variant=args.variant, engine=args.engine,
            n_core_groups=args.cgs,
        )
        report = run_ablation(
            baseline, n_items=args.items, reps=args.reps, seed=args.seed,
            progress=print if args.progress else None,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_report(report))
    if args.out:
        report.save(args.out)
        print(f"wrote JSON report to {args.out}")
    broken = [m for m in report.metrics if m.failures]
    if broken:
        for m in broken:
            print(f"error: run {m.run_id} ({m.component}={m.value}) had "
                  f"{m.failures} failed item(s)", file=sys.stderr)
        return 1
    if args.smoke:
        base = report.baseline
        losers = [
            m for m in report.metrics
            if m.component == "stage"
            and m.modeled_gflops >= base.modeled_gflops
        ]
        if losers:
            for m in losers:
                print(f"error: stage-off {m.value} reaches "
                      f"{m.modeled_gflops:.1f} modeled Gflop/s, not below "
                      f"the baseline's {base.modeled_gflops:.1f}",
                      file=sys.stderr)
            return 1
        print("smoke gate: baseline beats every stage-off config on "
              "modeled Gflop/s")
    return 0


def _parse_shape(text: str) -> tuple[int, int, int]:
    parts = text.lower().split("x")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"shape must be MxNxK, got {text!r}"
        )
    try:
        m, n, k = (int(p) for p in parts)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shape must be MxNxK integers, got {text!r}"
        ) from None
    return (m, n, k)


def build_tune_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dgemm tune",
        description="Closed-loop autotuning: measure the estimator's top "
                    "blocking candidates per shape bin and persist the "
                    "learned table Session consults",
    )
    parser.add_argument(
        "--shape", action="append", default=[], metavar="MxNxK",
        type=_parse_shape,
        help="workload shape, repeatable (default: two small bins)",
    )
    parser.add_argument(
        "--variant", default="SCHED", choices=sorted(VARIANTS),
        type=lambda s: s.upper(), help="implementation (paper Sec V)",
    )
    parser.add_argument(
        "--engine", choices=["device", "stepwise", "vectorized"],
        default="stepwise",
        help="engine the measurements run on (default stepwise)",
    )
    parser.add_argument("--top", type=int, default=3,
                        help="estimator candidates measured per bin "
                             "(default 3; the variant default params are "
                             "always added)")
    parser.add_argument("--reps", type=int, default=3,
                        help="timed calls per candidate (default 3)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the learned table here "
                             "(default TUNED.json unless --smoke)")
    parser.add_argument("--update", default=None, metavar="FILE",
                        help="load this table first and tune into it "
                             "(preserves other variants/engines/bins)")
    parser.add_argument("--tolerance", type=float, default=1.25,
                        help="headroom factor for the --smoke p50 gate "
                             "(default 1.25: tuned must be within 25%% "
                             "of the estimator fallback's p50 — small "
                             "smoke shapes are timing-noisy)")
    parser.add_argument("--smoke", action="store_true",
                        help="fixed small bins for CI; gates bit-exact "
                             "table consultation and the measured-p50 "
                             "no-slower contract; writes no table "
                             "unless --out is given")
    return parser


def _run_tune(argv: list[str]) -> int:
    from repro.core.session import Session
    from repro.tuning import TuningTable, measure_params, tune

    args = build_tune_parser().parse_args(argv)
    shapes = list(args.shape)
    if not shapes:
        shapes = [(96, 48, 80), (192, 96, 160)]
    if args.smoke:
        args.top, args.reps = 2, 3
    out = args.out
    if out is None and not args.smoke:
        out = "TUNED.json"
    try:
        table = TuningTable.load(args.update) if args.update else None
        table = tune(
            shapes, variant=args.variant, engine=args.engine,
            top=args.top, reps=args.reps, seed=args.seed,
            table=table, progress=print,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # gate 1 — consultation is bit-exact: a session resolving its
    # blocking from the table must reproduce the explicit-params result
    # bit for bit (same params -> same arithmetic; this catches any
    # resolution-path divergence).
    entry = next(
        e for e in table.entries
        if e.variant == args.variant and e.engine == args.engine
    )
    a, b, _ = gemm_operands(*entry.bin, seed=args.seed)
    with Session(
        variant=args.variant, engine=args.engine, tuned=table,
        n_core_groups=1,
    ) as tuned_session:
        via_table = tuned_session.dgemm(a, b)
    with Session(
        variant=args.variant, engine=args.engine, params=entry.params(),
        n_core_groups=1,
    ) as explicit_session:
        via_params = explicit_session.dgemm(a, b)
    if not np.array_equal(via_table, via_params):
        print("error: table-consulting session does not reproduce the "
              "explicit-params result bit-exactly", file=sys.stderr)
        return 1
    print("consultation gate: tuned-session result is bit-identical to "
          "explicit params")

    if args.smoke:
        # gate 2 — never slower than the estimator-only default: for
        # every tuned bin, the learned pick's measured p50 must be
        # within --tolerance of what the estimator fallback (an empty
        # table) would have chosen.  Equal picks pass by construction.
        fallback = TuningTable()
        for e in table.entries:
            if e.variant != args.variant or e.engine != args.engine:
                continue
            est = fallback.resolve(
                e.variant, e.engine, *e.bin
            ).params
            if (est.p_m, est.p_n, est.p_k) == (e.p_m, e.p_n, e.p_k):
                print(f"p50 gate: bin {e.bin} tuned pick equals the "
                      "estimator pick")
                continue
            tuned_p50 = measure_params(
                e.bin, variant=e.variant, engine=e.engine,
                params=e.params(), reps=args.reps, seed=args.seed,
            )
            est_p50 = measure_params(
                e.bin, variant=e.variant, engine=e.engine,
                params=est, reps=args.reps, seed=args.seed,
            )
            if tuned_p50 > est_p50 * args.tolerance:
                print(f"error: bin {e.bin} tuned pick p50 "
                      f"{tuned_p50 * 1e3:.2f} ms is slower than the "
                      f"estimator fallback's {est_p50 * 1e3:.2f} ms "
                      f"(tolerance {args.tolerance}x)", file=sys.stderr)
                return 1
            print(f"p50 gate: bin {e.bin} tuned "
                  f"{tuned_p50 * 1e3:.2f} ms <= estimator "
                  f"{est_p50 * 1e3:.2f} ms x {args.tolerance}")
        print("smoke gate: tuned picks are never slower than the "
              "estimator-only default (measured p50)")

    if out:
        table.save(out)
        print(f"wrote learned table ({len(table)} entries) to {out}")
    return 0


def _params_for(args) -> BlockingParams:
    traits = VARIANTS[args.variant].traits
    if args.preset == "paper":
        return (BlockingParams.paper_double() if traits.double_buffered
                else BlockingParams.paper_single())
    return BlockingParams.small(double_buffered=traits.double_buffered)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "schedule":
        return _run_schedule(argv[1:])
    if argv and argv[0] == "trace":
        return _run_trace(argv[1:])
    if argv and argv[0] == "chaos":
        return _run_chaos(argv[1:])
    if argv and argv[0] == "serve":
        return _run_serve(argv[1:])
    if argv and argv[0] == "metrics":
        return _run_metrics(argv[1:])
    if argv and argv[0] == "top":
        return _run_top(argv[1:])
    if argv and argv[0] == "ablate":
        return _run_ablate(argv[1:])
    if argv and argv[0] == "tune":
        return _run_tune(argv[1:])
    args = build_parser().parse_args(argv)
    params = _params_for(args)
    m = args.m if args.m is not None else 2 * params.b_m
    n = args.n if args.n is not None else params.b_n
    k = args.k if args.k is not None else params.b_k

    try:
        if args.estimate_only:
            estimate = Estimator().estimate(args.variant, m, n, k, params=params)
            print(f"{args.variant} {m}x{n}x{k}: {estimate.gflops:.1f} Gflop/s "
                  f"({100 * estimate.efficiency():.1f}% of peak), "
                  f"{estimate.bytes_moved / 1e6:.1f} MB traffic, "
                  f"{estimate.seconds * 1e3:.3f} ms modelled")
        else:
            a, b, c = gemm_operands(m, n, k, seed=args.seed)
            cg = CoreGroup()
            out = dgemm(a, b, c, alpha=args.alpha, beta=args.beta,
                        variant=args.variant, params=params,
                        core_group=cg, pad=args.pad)
            expected = reference_dgemm(args.alpha, a, b, args.beta, c)
            err = float(np.max(np.abs(out - expected)))
            status = "OK" if err < 1e-9 else "MISMATCH"
            print(f"{args.variant} {m}x{n}x{k}: max |sim - numpy| = {err:.2e} "
                  f"[{status}]")
            print(f"DMA: {cg.dma.stats.bytes_total / 1e6:.2f} MB "
                  f"({cg.dma.stats.transactions} transactions); "
                  f"regcomm: {cg.regcomm.stats.bytes_moved / 1e6:.2f} MB")
            if args.check and status != "OK":
                return 1
        if args.gantt:
            from repro.perf.gantt import render_gantt
            from repro.perf.timeline import TimelineSimulator

            if VARIANTS[args.variant].traits.shared:
                paper_params = _params_for(
                    argparse.Namespace(variant=args.variant, preset="paper")
                )
                gm = max(m, 2 * paper_params.b_m)
                gn = max(n, paper_params.b_n)
                gk = max(k, paper_params.b_k)
                gm -= gm % paper_params.b_m
                gn -= gn % paper_params.b_n
                gk -= gk % paper_params.b_k
                result = TimelineSimulator().run(
                    args.variant, gm, gn, gk, params=paper_params
                )
                print()
                print(render_gantt(result.tracer, width=90))
            else:
                print("(RAW has no blocked timeline; --gantt skipped)")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
