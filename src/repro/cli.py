"""Command-line front end: run a simulated DGEMM from the shell.

Installed as ``repro-dgemm``::

    repro-dgemm --m 256 --n 128 --k 256 --variant SCHED --check
    repro-dgemm --preset paper --variant DB --estimate-only
    repro-dgemm --m 512 --n 512 --k 1536 --gantt

``--estimate-only`` skips the functional simulation and prints the
performance model's prediction (any paper-scale size is fine there);
functional runs execute on the device model and verify against numpy.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.arch.core_group import CoreGroup
from repro.core.api import dgemm
from repro.core.params import BlockingParams
from repro.core.reference import reference_dgemm
from repro.core.variants import VARIANTS
from repro.errors import ReproError
from repro.perf.estimator import Estimator
from repro.workloads.matrices import gemm_operands

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dgemm",
        description="DGEMM on a simulated SW26010 core group "
                    "(ICPP'17 reproduction)",
    )
    parser.add_argument("--m", type=int, default=None, help="rows of A/C")
    parser.add_argument("--n", type=int, default=None, help="columns of B/C")
    parser.add_argument("--k", type=int, default=None, help="inner dimension")
    parser.add_argument(
        "--variant", default="SCHED", choices=sorted(VARIANTS),
        type=lambda s: s.upper(), help="implementation (paper Sec V)",
    )
    parser.add_argument("--alpha", type=float, default=1.0)
    parser.add_argument("--beta", type=float, default=1.0)
    parser.add_argument(
        "--preset", choices=["small", "paper"], default="small",
        help="blocking parameters: scaled-down (default) or the paper's",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--pad", action="store_true",
                        help="zero-pad non-multiple shapes")
    parser.add_argument("--check", action="store_true",
                        help="verify against numpy (on by default for runs)")
    parser.add_argument("--estimate-only", action="store_true",
                        help="skip the functional run; print the model's view")
    parser.add_argument("--gantt", action="store_true",
                        help="render the modelled DMA/compute timeline")
    return parser


def _params_for(args) -> BlockingParams:
    traits = VARIANTS[args.variant].traits
    if args.preset == "paper":
        return (BlockingParams.paper_double() if traits.double_buffered
                else BlockingParams.paper_single())
    return BlockingParams.small(double_buffered=traits.double_buffered)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    params = _params_for(args)
    m = args.m if args.m is not None else 2 * params.b_m
    n = args.n if args.n is not None else params.b_n
    k = args.k if args.k is not None else params.b_k

    try:
        if args.estimate_only:
            estimate = Estimator().estimate(args.variant, m, n, k, params=params)
            print(f"{args.variant} {m}x{n}x{k}: {estimate.gflops:.1f} Gflop/s "
                  f"({100 * estimate.efficiency():.1f}% of peak), "
                  f"{estimate.bytes_moved / 1e6:.1f} MB traffic, "
                  f"{estimate.seconds * 1e3:.3f} ms modelled")
        else:
            a, b, c = gemm_operands(m, n, k, seed=args.seed)
            cg = CoreGroup()
            out = dgemm(a, b, c, alpha=args.alpha, beta=args.beta,
                        variant=args.variant, params=params,
                        core_group=cg, pad=args.pad)
            expected = reference_dgemm(args.alpha, a, b, args.beta, c)
            err = float(np.max(np.abs(out - expected)))
            status = "OK" if err < 1e-9 else "MISMATCH"
            print(f"{args.variant} {m}x{n}x{k}: max |sim - numpy| = {err:.2e} "
                  f"[{status}]")
            print(f"DMA: {cg.dma.stats.bytes_total / 1e6:.2f} MB "
                  f"({cg.dma.stats.transactions} transactions); "
                  f"regcomm: {cg.regcomm.stats.bytes_moved / 1e6:.2f} MB")
            if args.check and status != "OK":
                return 1
        if args.gantt:
            from repro.perf.gantt import render_gantt
            from repro.perf.timeline import TimelineSimulator

            if VARIANTS[args.variant].traits.shared:
                paper_params = _params_for(
                    argparse.Namespace(variant=args.variant, preset="paper")
                )
                gm = max(m, 2 * paper_params.b_m)
                gn = max(n, paper_params.b_n)
                gk = max(k, paper_params.b_k)
                gm -= gm % paper_params.b_m
                gn -= gn % paper_params.b_n
                gk -= gk % paper_params.b_k
                result = TimelineSimulator().run(
                    args.variant, gm, gn, gk, params=paper_params
                )
                print()
                print(render_gantt(result.tracer, width=90))
            else:
                print("(RAW has no blocked timeline; --gantt skipped)")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
