"""Generator-based coroutine processes.

A process is a generator that yields :class:`~repro.sim.events.Event`
objects; the process resumes when the yielded event fires, receiving
the event's value as the result of the ``yield`` expression.  A process
is itself an event that fires (with the generator's return value) when
the generator finishes, so processes can wait on each other — that is
how the timeline model expresses "compute waits for the prefetch of the
next block".
"""

from __future__ import annotations

from typing import Generator

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import Event

__all__ = ["Process"]


class Process(Event):
    """A running coroutine inside the engine."""

    def __init__(self, engine: Engine, generator: Generator, name: str = "process") -> None:
        super().__init__(engine, name)
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__} "
                "(did you forget a yield?)"
            )
        self._gen = generator
        # start at the current instant, but via the heap so creation
        # order does not matter within a timestep
        engine.schedule(0.0, lambda: self._resume(None))

    def _resume(self, send_value) -> None:
        try:
            target = self._gen.send(send_value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}; "
                "processes may only yield Event instances"
            )
        target.add_callback(lambda ev: self._resume(ev.value))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.triggered else "running"
        return f"<Process {self.name!r} {state}>"
