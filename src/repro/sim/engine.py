"""The event loop: a heap of (time, sequence, action) triples."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator

from repro.errors import SimulationError
from repro.sim.events import Event

__all__ = ["Engine"]


class Engine:
    """Discrete-event clock and scheduler.

    Time is unitless from the engine's point of view; the performance
    models schedule in seconds.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0

    # -- primitives ------------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` at ``now + delay``."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, action))

    def timeout(self, delay: float, value: Any = None, name: str = "timeout") -> Event:
        """An event that fires ``delay`` time units from now."""
        ev = Event(self, name)
        self.schedule(delay, lambda: ev.succeed(value))
        return ev

    def process(self, generator: Generator, name: str = "process"):
        """Spawn a :class:`~repro.sim.process.Process` (import-cycle shim)."""
        from repro.sim.process import Process

        return Process(self, generator, name)

    # -- running ---------------------------------------------------------

    def step(self) -> None:
        if not self._heap:
            raise SimulationError("no events to step")
        time, _seq, action = heapq.heappop(self._heap)
        if time < self.now:
            raise SimulationError("event heap went backwards in time")
        self.now = time
        action()

    def run(self, until: Event | float | None = None) -> Any:
        """Run until an event fires, a time is reached, or the heap drains.

        Returns the event's value when ``until`` is an event.
        """
        if isinstance(until, Event):
            while not until.triggered:
                if not self._heap:
                    raise SimulationError(
                        f"event {until.name!r} can never fire: event heap empty "
                        f"at t={self.now} (deadlocked processes?)"
                    )
                self.step()
            return until.value
        if until is None:
            while self._heap:
                self.step()
            return None
        while self._heap and self._heap[0][0] <= until:
            self.step()
        self.now = max(self.now, float(until))
        return None

    @property
    def pending_count(self) -> int:
        return len(self._heap)
