"""One-shot events for the discrete-event engine."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

__all__ = ["Event", "AllOf", "AnyOf"]


class Event:
    """A value that will be produced at some simulated time.

    Processes wait on events by yielding them; callbacks run at the
    simulated instant the event is triggered.
    """

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._callbacks: list[Callable[["Event"], None]] = []
        self._triggered = False
        self.value: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self._triggered:
            # late subscribers run immediately, preserving determinism
            fn(self)
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None) -> "Event":
        """Trigger now (at the engine's current time)."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class AllOf(Event):
    """Fires when every child event has fired; value is the child values."""

    def __init__(self, engine: "Engine", events: list[Event], name: str = "all_of") -> None:
        super().__init__(engine, name)
        self._waiting = 0
        self._children = list(events)
        for ev in self._children:
            if not ev.triggered:
                self._waiting += 1
                ev.add_callback(self._child_done)
        if self._waiting == 0:
            self.succeed([ev.value for ev in self._children])

    def _child_done(self, _ev: Event) -> None:
        self._waiting -= 1
        if self._waiting == 0 and not self.triggered:
            self.succeed([ev.value for ev in self._children])


class AnyOf(Event):
    """Fires when the first child fires; value is (index, child value)."""

    def __init__(self, engine: "Engine", events: list[Event], name: str = "any_of") -> None:
        super().__init__(engine, name)
        self._children = list(events)
        for idx, ev in enumerate(self._children):
            if ev.triggered:
                self.succeed((idx, ev.value))
                break
        else:
            for idx, ev in enumerate(self._children):
                ev.add_callback(self._make_cb(idx))

    def _make_cb(self, idx: int) -> Callable[[Event], None]:
        def cb(ev: Event) -> None:
            if not self.triggered:
                self.succeed((idx, ev.value))

        return cb
