"""Capacity-limited FIFO resources (servers).

The DMA channel of a CG is a single shared resource: concurrent
requests from double buffering queue up and serialize on it, which is
exactly the effect that limits how much latency double buffering can
hide once compute time drops below transfer time.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import Event

__all__ = ["Resource"]


class Resource:
    """A server pool with FIFO admission.

    ``request()`` returns an event that fires when a slot is granted;
    the holder must call ``release()`` exactly once per grant.
    """

    def __init__(self, engine: Engine, capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: deque[Event] = deque()
        #: cumulative busy time integral (for utilization reports).
        self.busy_time = 0.0
        self._last_change = 0.0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._queue)

    def _account(self) -> None:
        now = self.engine.now
        self.busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def request(self) -> Event:
        ev = self.engine.event(f"{self.name}.request")
        self._account()
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self._queue.append(ev)
        return ev

    def release(self) -> None:
        self._account()
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._queue:
            # hand the slot straight to the next waiter
            self._queue.popleft().succeed()
        else:
            self._in_use -= 1

    def use(self, duration: float):
        """A process body that acquires, holds for ``duration``, releases.

        Usage from another process::

            yield engine.process(channel.use(t), name="dma")
        """
        yield self.request()
        try:
            yield self.engine.timeout(duration)
        finally:
            self.release()

    def utilization(self, horizon: float | None = None) -> float:
        """Busy fraction over ``[0, horizon]`` (default: now)."""
        self._account()
        horizon = self.engine.now if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        return self.busy_time / (horizon * self.capacity)
