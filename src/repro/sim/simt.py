"""Lockstep SIMT execution of per-thread kernels.

The paper: "The 64 threads work in the way of single-instruction
multiple-thread (SIMT)."  The GEMM variants exploit that by executing
bulk-synchronously (one Python loop over threads per phase); this
module provides the *general* model — every CPE thread is its own
generator, yielding :data:`BARRIER` at synchronization points — so the
equivalence of the two executions can be tested rather than assumed
(see ``tests/unit/sim/test_simt.py``, which runs a full strip
multiplication as 64 coroutines and matches the bulk-synchronous
result).

Threads may return values; :func:`run_lockstep` collects them.  A
thread that exits while others still hit barriers is an error (on
hardware the cluster sync would hang), as is a generator yielding
anything but :data:`BARRIER`.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Mapping, Sequence

from repro.errors import SimulationError
from repro.arch.mesh import Coord

__all__ = ["BARRIER", "run_lockstep"]

#: the value SIMT threads yield to arrive at the cluster barrier.
BARRIER = object()


def run_lockstep(
    threads: Mapping[Coord, Generator] | Sequence[Generator],
    max_steps: int = 1_000_000,
) -> dict[Any, Any]:
    """Drive all threads barrier-to-barrier until every one returns.

    All threads advance to their next barrier before any crosses it —
    the lockstep semantics of the CPE cluster's ``sync``.  Returns each
    thread's return value, keyed like the input.
    """
    if isinstance(threads, Mapping):
        items = list(threads.items())
    else:
        items = list(enumerate(threads))
    if not items:
        raise SimulationError("no threads to run")
    live: dict[Any, Generator] = {key: gen for key, gen in items}
    results: dict[Any, Any] = {}
    for _step in range(max_steps):
        arrived = []
        finished = []
        for key, gen in live.items():
            try:
                yielded = gen.send(None)
            except StopIteration as stop:
                results[key] = stop.value
                finished.append(key)
                continue
            if yielded is not BARRIER:
                raise SimulationError(
                    f"SIMT thread {key} yielded {yielded!r}; threads may "
                    "only yield BARRIER"
                )
            arrived.append(key)
        for key in finished:
            del live[key]
        if not live:
            return results
        if arrived and finished:
            # divergence: some threads ended while others wait at a
            # barrier that can now never fill
            raise SimulationError(
                f"{len(finished)} threads exited while {len(arrived)} wait "
                "at a barrier — the cluster sync would hang"
            )
    raise SimulationError(f"lockstep did not converge in {max_steps} steps")
