"""Timeline tracing: named spans with categories.

The Figure 6 analysis uses traces to report how much of the wall clock
each variant spends in DMA vs. compute and how much overlap double
buffering achieves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["Span", "Tracer"]


@dataclass(frozen=True)
class Span:
    """A closed interval of activity on the timeline."""

    category: str
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Collects spans and answers aggregate questions about them."""

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def record(self, category: str, label: str, start: float, end: float) -> None:
        if end < start:
            raise ValueError(f"span ends before it starts: [{start}, {end}]")
        self.spans.append(Span(category, label, start, end))

    def total(self, category: str) -> float:
        """Sum of span durations in a category (overlap counted twice)."""
        return sum(s.duration for s in self.spans if s.category == category)

    def busy(self, category: str) -> float:
        """Union length of a category's spans (overlap counted once)."""
        intervals = sorted(
            (s.start, s.end) for s in self.spans if s.category == category
        )
        busy = 0.0
        cur_start: float | None = None
        cur_end = 0.0
        for start, end in intervals:
            if cur_start is None:
                cur_start, cur_end = start, end
            elif start <= cur_end:
                cur_end = max(cur_end, end)
            else:
                busy += cur_end - cur_start
                cur_start, cur_end = start, end
        if cur_start is not None:
            busy += cur_end - cur_start
        return busy

    def overlap(self, cat_a: str, cat_b: str) -> float:
        """Total time during which both categories are active."""
        a = sorted((s.start, s.end) for s in self.spans if s.category == cat_a)
        b = sorted((s.start, s.end) for s in self.spans if s.category == cat_b)
        i = j = 0
        shared = 0.0
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo < hi:
                shared += hi - lo
            if a[i][1] <= b[j][1]:
                i += 1
            else:
                j += 1
        return shared

    def categories(self) -> list[str]:
        return sorted({s.category for s in self.spans})

    def makespan(self) -> float:
        if not self.spans:
            return 0.0
        return max(s.end for s in self.spans) - min(s.start for s in self.spans)

    def filter(self, category: str) -> Iterable[Span]:
        return (s for s in self.spans if s.category == category)
