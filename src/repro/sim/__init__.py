"""A small discrete-event simulation engine.

The performance path of the library replays the paper's Algorithm 1 and
Algorithm 2 loop structures as concurrent processes (compute stream,
DMA streams) so that serialization vs. double-buffered overlap emerges
from event timing rather than from hand-written max()/sum() formulas.

The engine is deliberately simpy-like but dependency-free:

- :class:`~repro.sim.engine.Engine` — the event loop and clock;
- :class:`~repro.sim.events.Event` — one-shot triggerable values;
- :class:`~repro.sim.process.Process` — generator coroutines that
  ``yield`` events to wait on them;
- :class:`~repro.sim.resources.Resource` — FIFO servers (e.g. the
  memory controller's DMA channel);
- :class:`~repro.sim.barrier.Barrier` — the CPE cluster ``sync``;
- :class:`~repro.sim.trace.Tracer` — timeline records for reports.
"""

from repro.sim.events import Event, AllOf, AnyOf
from repro.sim.engine import Engine
from repro.sim.process import Process
from repro.sim.resources import Resource
from repro.sim.barrier import Barrier
from repro.sim.trace import Tracer, Span
from repro.sim.simt import BARRIER, run_lockstep

__all__ = [
    "BARRIER",
    "run_lockstep",
    "Event",
    "AllOf",
    "AnyOf",
    "Engine",
    "Process",
    "Resource",
    "Barrier",
    "Tracer",
    "Span",
]
