"""Reusable barrier: the CPE cluster's ``sync`` instruction."""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import Event

__all__ = ["Barrier"]


class Barrier:
    """All ``parties`` processes must arrive before any proceeds.

    The barrier is cyclic: it resets automatically after releasing a
    full generation, like the hardware row/cluster synchronisation the
    paper's Algorithm 2 relies on between pipeline stages.
    """

    def __init__(self, engine: Engine, parties: int, name: str = "barrier") -> None:
        if parties < 1:
            raise SimulationError(f"barrier needs >= 1 parties, got {parties}")
        self.engine = engine
        self.parties = parties
        self.name = name
        self._waiting: list[Event] = []
        self.generations = 0

    @property
    def arrived(self) -> int:
        return len(self._waiting)

    def wait(self) -> Event:
        """Arrive; the returned event fires when the generation is full."""
        ev = self.engine.event(f"{self.name}.wait")
        self._waiting.append(ev)
        if len(self._waiting) == self.parties:
            generation, self._waiting = self._waiting, []
            self.generations += 1
            gen_index = self.generations
            for waiter in generation:
                waiter.succeed(gen_index)
        return ev
