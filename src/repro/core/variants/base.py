"""Common machinery of the GEMM variants.

A variant has two faces:

- ``run(cg, a, b, c, ...)`` — the functional execution on the device
  model, moving real data through DMA / register communication and
  mutating C in main memory;
- ``traits`` — the static description (mapping, buffering, kernel
  class) from which :mod:`repro.perf.estimator` builds the timing
  model.  Keeping timing out of the variant classes guarantees the
  functional path cannot quietly diverge from what is being timed; an
  integration test instead asserts both paths agree on bytes moved.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import UnsupportedShapeError
from repro.arch.core_group import CoreGroup
from repro.arch.memory import MatrixHandle
from repro.arch.mesh import Coord
from repro.core.kernel_functional import tile_multiply
from repro.core.mapping import BUF_A, BUF_B, BUF_C, DataThreadMapping
from repro.core.params import GRID, BlockingParams
from repro.core.sharing import Scheme, exchange_step

__all__ = ["VariantTraits", "GEMMVariant", "check_gemm_shapes"]


@dataclass(frozen=True)
class VariantTraits:
    """Static properties the performance models key off."""

    name: str
    #: DMA mode for A and C ("PE" or "ROW"); B is always PE.
    ac_mode: str
    #: whether the collective sharing scheme is used (False only for RAW).
    shared: bool
    double_buffered: bool
    #: kernel-cycle class: "naive" or "scheduled".
    kernel: str


def check_gemm_shapes(a: MatrixHandle, b: MatrixHandle, c: MatrixHandle) -> tuple[int, int, int]:
    """Validate the BLAS shape contract; return (m, n, k)."""
    m, k = a.rows, a.cols
    k2, n = b.rows, b.cols
    if k != k2 or c.rows != m or c.cols != n:
        raise UnsupportedShapeError(
            f"inconsistent GEMM shapes: A {a.shape}, B {b.shape}, C {c.shape}"
        )
    return m, n, k


class GEMMVariant(ABC):
    """Base class of the five implementations."""

    traits: VariantTraits

    @abstractmethod
    def default_params(self) -> BlockingParams:
        """The blocking parameters the paper uses for this variant."""

    @abstractmethod
    def run(
        self,
        cg: CoreGroup,
        a: MatrixHandle,
        b: MatrixHandle,
        c: MatrixHandle,
        alpha: float = 1.0,
        beta: float = 0.0,
        params: BlockingParams | None = None,
    ) -> None:
        """Execute ``C = alpha*A*B + beta*C`` on the core group."""

    # -- helpers shared by the blocked variants -------------------------

    @staticmethod
    def _tiles(cg: CoreGroup, buf: str) -> dict[Coord, np.ndarray]:
        """Live views of a named LDM buffer across the cluster."""
        return {coord: cg.cpe(coord).ldm.get(buf).data for coord in cg.mesh.coords()}

    @staticmethod
    def scale_c(cg: CoreGroup, buf: str, beta: float) -> None:
        """Apply the beta scaling to every CPE's loaded C tile."""
        if beta == 1.0:
            return
        for coord in cg.mesh.coords():
            cg.cpe(coord).ldm.get(buf).data *= beta

    @staticmethod
    def strip_multiply(
        cg: CoreGroup,
        scheme: Scheme,
        alpha: float,
        a_buf: str = BUF_A,
        b_buf: str = BUF_B,
        c_buf: str = BUF_C,
    ) -> None:
        """Eight sharing steps updating every CPE's local C tile."""
        a_tiles = GEMMVariant._tiles(cg, a_buf)
        b_tiles = GEMMVariant._tiles(cg, b_buf)
        c_tiles = GEMMVariant._tiles(cg, c_buf)
        for step in range(GRID):
            operands = exchange_step(cg, step, scheme, a_tiles, b_tiles)
            for coord, (a_part, b_part) in operands.items():
                tile_multiply(c_tiles[coord], a_part, b_part, alpha)

    @staticmethod
    def prepare(
        cg: CoreGroup,
        mapping: DataThreadMapping,
        params: BlockingParams,
        a: MatrixHandle,
        b: MatrixHandle,
        c: MatrixHandle,
    ) -> tuple[int, int, int]:
        """Validate, reset the cluster, allocate tiles; return (M, N, K)."""
        params.validate(cg.spec)
        m, n, k = check_gemm_shapes(a, b, c)
        grid_m, grid_n, grid_k = params.check_shape(m, n, k)
        cg.reset_cpes()
        cg.mpe.spawn(cg.spec.n_cpes)
        mapping.allocate(cg)
        return grid_m, grid_n, grid_k
