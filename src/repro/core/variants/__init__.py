"""The five DGEMM implementations evaluated in the paper (Sec V).

- ``RAW`` — straightforward N-M-K loop, per-thread PE_MODE tiles, no
  inter-CPE sharing;
- ``PE`` — three-level blocking + collective data sharing (Sec III);
- ``ROW`` — PE plus the mixed ROW/PE data-thread mapping (Sec IV-A);
- ``DB`` — ROW plus double buffering (Sec IV-B, Algorithm 2);
- ``SCHED`` — DB plus the scheduled assembly kernel (Sec IV-C,
  Algorithm 3).  Functionally identical to DB — scheduling only
  changes cycles — so its run() shares DB's code path while its traits
  select the scheduled kernel-cycle model.
"""

from repro.core.variants.base import GEMMVariant, VariantTraits
from repro.core.variants.raw import RawVariant
from repro.core.variants.pe import PEVariant
from repro.core.variants.row import RowVariant
from repro.core.variants.db import DoubleBufferedVariant
from repro.core.variants.sched import ScheduledVariant

__all__ = [
    "GEMMVariant",
    "VariantTraits",
    "RawVariant",
    "PEVariant",
    "RowVariant",
    "DoubleBufferedVariant",
    "ScheduledVariant",
    "VARIANTS",
    "get_variant",
]

#: registry in the paper's presentation order.
VARIANTS: dict[str, type[GEMMVariant]] = {
    "RAW": RawVariant,
    "PE": PEVariant,
    "ROW": RowVariant,
    "DB": DoubleBufferedVariant,
    "SCHED": ScheduledVariant,
}


def get_variant(name: str) -> GEMMVariant:
    """Instantiate a variant by its paper name (case-insensitive)."""
    try:
        return VARIANTS[name.upper()]()
    except KeyError:
        raise KeyError(
            f"unknown variant {name!r}; choose from {sorted(VARIANTS)}"
        ) from None
