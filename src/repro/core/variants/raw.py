"""The RAW version: the paper's straightforward baseline (Sec V).

"A straightforward implementation based on a simple N-M-K variant of
the triple-nested loop, where C is partitioned to thread-level blocks
and evenly assigned to the 64 threads to update, and matrix elements of
A and B are fetched through DMA in PE_MODE."

Each thread owns an (m/8) x (n/8) panel of C and works through it in
LDM-sized tiles, fetching its own A and B tiles with no inter-CPE
sharing — so the same A panel is fetched by all eight threads of a mesh
row and the same B panel by all eight threads of a mesh column, an
8x traffic blow-up that makes RAW memory-bound.  The paper does not
pin the tile sizes; :func:`RawVariant.tile_geometry` documents the
natural choice (the largest 128 B-aligned tiles below the classic 48
cap that divide the panel) and the perf model reuses it, so the
functional and timed executions agree by construction.
"""

from __future__ import annotations

from repro.errors import UnsupportedShapeError
from repro.arch.core_group import CoreGroup
from repro.arch.memory import MatrixHandle
from repro.core.kernel_functional import tile_multiply
from repro.core.mapping import BUF_A, BUF_B, BUF_C
from repro.core.params import GRID, BlockingParams
from repro.core.variants.base import GEMMVariant, VariantTraits, check_gemm_shapes

__all__ = ["RawVariant", "pick_tile"]

#: cap on tile sides, the classic LDM-friendly square (48^2 x 3 doubles
#: = 54 KB < 64 KB).
TILE_CAP = 48


def pick_tile(dim: int, granule: int, cap: int = TILE_CAP) -> int:
    """Largest multiple of ``granule`` <= ``cap`` that divides ``dim``."""
    if dim <= 0 or dim % granule != 0:
        raise UnsupportedShapeError(
            f"dimension {dim} is not a positive multiple of {granule}"
        )
    for t in range(min(cap, dim) - min(cap, dim) % granule, 0, -granule):
        if dim % t == 0:
            return t
    raise UnsupportedShapeError(f"no {granule}-aligned tile divides {dim}")


class RawVariant(GEMMVariant):
    """Per-thread tiled triple loop with no data sharing."""

    traits = VariantTraits(
        name="RAW", ac_mode="PE", shared=False, double_buffered=False, kernel="naive"
    )

    def default_params(self) -> BlockingParams:
        # RAW ignores the three-level parameters; kept for API symmetry.
        return BlockingParams.paper_single()

    @staticmethod
    def tile_geometry(m: int, n: int, k: int) -> tuple[int, int, int]:
        """(tM, tN, tK) of the per-thread LDM tiles.

        tM and tK obey the 128 B DMA granule (multiples of 16); tN only
        needs the register tile's multiple of 4.
        """
        if m % GRID or n % GRID:
            raise UnsupportedShapeError(
                f"RAW partitions C across the {GRID}x{GRID} grid; "
                f"m={m}, n={n} must be multiples of {GRID}"
            )
        t_m = pick_tile(m // GRID, 16)
        t_n = pick_tile(n // GRID, 4)
        t_k = pick_tile(k, 16)
        return t_m, t_n, t_k

    def run(
        self,
        cg: CoreGroup,
        a: MatrixHandle,
        b: MatrixHandle,
        c: MatrixHandle,
        alpha: float = 1.0,
        beta: float = 0.0,
        params: BlockingParams | None = None,
    ) -> None:
        m, n, k = check_gemm_shapes(a, b, c)
        t_m, t_n, t_k = self.tile_geometry(m, n, k)
        panel_m, panel_n = m // GRID, n // GRID
        cg.reset_cpes()
        cg.mpe.spawn(cg.spec.n_cpes)
        for cpe in cg.cpes():
            cpe.ldm.alloc(BUF_A, (t_m, t_k))
            cpe.ldm.alloc(BUF_B, (t_k, t_n))
            cpe.ldm.alloc(BUF_C, (t_m, t_n))

        for coord in cg.mesh.coords():
            cpe = cg.cpe(coord)
            buf_a = cpe.ldm.get(BUF_A)
            buf_b = cpe.ldm.get(BUF_B)
            buf_c = cpe.ldm.get(BUF_C)
            row0 = coord.row * panel_m
            col0 = coord.col * panel_n
            for ti in range(panel_m // t_m):
                for tj in range(panel_n // t_n):
                    r = row0 + ti * t_m
                    s = col0 + tj * t_n
                    cg.dma.pe_get(c, r, s, t_m, t_n, buf_c)
                    if beta != 1.0:
                        buf_c.data *= beta
                    for kk in range(k // t_k):
                        cg.dma.pe_get(a, r, kk * t_k, t_m, t_k, buf_a)
                        cg.dma.pe_get(b, kk * t_k, s, t_k, t_n, buf_b)
                        tile_multiply(buf_c.data, buf_a.data, buf_b.data, alpha)
                    cg.dma.pe_put(c, r, s, t_m, t_n, buf_c)
