"""The SCHED version: DB plus the scheduled assembly kernel (Sec IV-C).

Instruction scheduling changes *when* the arithmetic happens, not what
it computes, so the functional execution is DB's; the traits select the
``scheduled`` kernel class, which the performance models resolve to the
Algorithm 3 cycle profile from :mod:`repro.isa`.
"""

from __future__ import annotations

from repro.core.variants.base import VariantTraits
from repro.core.variants.db import DoubleBufferedVariant

__all__ = ["ScheduledVariant"]


class ScheduledVariant(DoubleBufferedVariant):
    """DB with the hand-scheduled microkernel."""

    traits = VariantTraits(
        name="SCHED", ac_mode="ROW", shared=True, double_buffered=True,
        kernel="scheduled",
    )
