"""The ROW version: PE plus the mixed-mode data-thread mapping (Sec IV-A).

A and C travel in ``ROW_MODE`` (higher sustained bandwidth, interleaved
Figure 5 distribution); B stays in ``PE_MODE`` with its remapped
layout; the register broadcast directions swap accordingly (A along
columns, B along rows).  The loop structure is unchanged from
Algorithm 1 — the paper stresses that only the communication pattern
needs adjusting.
"""

from __future__ import annotations

from repro.core.mapping import RowMapping
from repro.core.sharing import Scheme
from repro.core.variants.base import VariantTraits
from repro.core.variants.pe import PEVariant

__all__ = ["RowVariant"]


class RowVariant(PEVariant):
    """Three-level blocking over the mixed ROW/PE mapping."""

    traits = VariantTraits(
        name="ROW", ac_mode="ROW", shared=True, double_buffered=False, kernel="naive"
    )
    scheme = Scheme.ROW
    mapping_cls = RowMapping
