"""Cannon's algorithm on the CPE mesh — the A7 ablation variant.

The classic alternative to the paper's broadcast sharing: after an
initial skew (A's block row ``i`` rotated left by ``i``, B's block
column ``j`` rotated up by ``j``), every step multiplies the local
tiles and shifts A one hop left and B one hop up, using point-to-point
register communication instead of broadcasts.

Why the paper's scheme wins on this hardware (quantified in
``experiments/ablations.py::render_cannon``):

- in the broadcast scheme only the 16 owner CPEs *send* per step, and
  each receiver's per-iteration communication (4 ``getr`` + 4 ``getc``)
  fits the secondary pipe's 16 slots alongside the pointer bumps;
- in Cannon every CPE both sends and receives its whole A and B tiles
  every step, doubling the secondary-pipe pressure (8 receives + 8
  sends per 16-vmad iteration) past what 16 dual-issue slots can hide —
  the FP pipe starves on communication, not on data volume.

The functional implementation below is exact (validated against the
reference like every variant); it exists so the comparison is between
two *working* algorithms, not a strawman.
"""

from __future__ import annotations

import numpy as np

from repro.arch.core_group import CoreGroup
from repro.arch.memory import MatrixHandle
from repro.arch.mesh import Coord
from repro.core.kernel_functional import tile_multiply
from repro.core.mapping import BUF_A, BUF_B, BUF_C, PEMapping
from repro.core.params import GRID, BlockingParams
from repro.core.variants.base import GEMMVariant, VariantTraits

__all__ = ["CannonVariant"]


class CannonVariant(GEMMVariant):
    """Skew-and-shift mesh GEMM over point-to-point register sends."""

    traits = VariantTraits(
        name="CANNON", ac_mode="PE", shared=True, double_buffered=False,
        kernel="naive",
    )
    mapping_cls = PEMapping

    def default_params(self) -> BlockingParams:
        return BlockingParams.paper_single()

    # -- mesh dataflow -----------------------------------------------------

    @staticmethod
    def _line(coord: Coord, matrix: str) -> int:
        """Skew distance of a tile: its block row for A, column for B."""
        return coord.row if matrix == "A" else coord.col

    @classmethod
    def _skew(cls, cg: CoreGroup, tiles: dict[Coord, np.ndarray], matrix: str) -> dict[Coord, np.ndarray]:
        """Initial alignment: A row i rotates left i hops, B column j
        rotates up j hops — executed as single-hop rounds (round r
        shifts every line with index >= r), so each movement is one
        legal neighbour send."""
        current = dict(tiles)
        for round_ in range(1, GRID):
            active = {c: t for c, t in current.items()
                      if cls._line(c, matrix) >= round_}
            passive = {c: t for c, t in current.items()
                       if cls._line(c, matrix) < round_}
            current = {**passive, **cls._shift(cg, active, matrix)}
        return current

    @staticmethod
    def _shift(cg: CoreGroup, tiles: dict[Coord, np.ndarray], matrix: str) -> dict[Coord, np.ndarray]:
        """One cyclic hop: A left along its row, B up along its column.

        ``tiles`` must cover whole mesh lines (rows for A, columns for
        B), so every participant both sends and receives exactly once.
        """
        comm = cg.regcomm
        for coord, tile in tiles.items():
            if matrix == "A":
                comm.send_row(coord, (coord.col - 1) % GRID, tile)
            else:
                comm.send_col(coord, (coord.row - 1) % GRID, tile)
        out: dict[Coord, np.ndarray] = {}
        for coord in tiles:
            receive = comm.receive_row if matrix == "A" else comm.receive_col
            out[coord] = receive(coord).data
        return out

    # -- GEMM ---------------------------------------------------------------

    def run(
        self,
        cg: CoreGroup,
        a: MatrixHandle,
        b: MatrixHandle,
        c: MatrixHandle,
        alpha: float = 1.0,
        beta: float = 0.0,
        params: BlockingParams | None = None,
    ) -> None:
        params = params or self.default_params()
        if params.double_buffered:
            raise ValueError("CANNON is a single-buffered variant")
        mapping = self.mapping_cls(params)
        grid_m, grid_n, grid_k = self.prepare(cg, mapping, params, a, b, c)
        for j in range(grid_n):
            for l in range(grid_k):
                mapping.load_b(cg, b, l, j)
                for i in range(grid_m):
                    mapping.load_a(cg, a, i, l)
                    mapping.load_c(cg, c, i, j)
                    if l == 0:
                        self.scale_c(cg, BUF_C, beta)
                    self._cannon_block_multiply(cg, alpha)
                    mapping.store_c(cg, c, i, j)

    def _cannon_block_multiply(self, cg: CoreGroup, alpha: float) -> None:
        a_tiles = {c: cg.cpe(c).ldm.get(BUF_A).data.copy() for c in cg.mesh.coords()}
        b_tiles = {c: cg.cpe(c).ldm.get(BUF_B).data.copy() for c in cg.mesh.coords()}
        c_tiles = self._tiles(cg, BUF_C)
        a_tiles = self._skew(cg, a_tiles, "A")
        b_tiles = self._skew(cg, b_tiles, "B")
        for _step in range(GRID):
            for coord in cg.mesh.coords():
                tile_multiply(c_tiles[coord], a_tiles[coord], b_tiles[coord], alpha)
            a_tiles = self._shift(cg, a_tiles, "A")
            b_tiles = self._shift(cg, b_tiles, "B")
        cg.regcomm.assert_drained()
