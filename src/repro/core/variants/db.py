"""The DB version: double buffering on top of ROW (Sec IV-B).

Algorithm 2 verbatim: A and C tiles live in two LDM slots each; while
slot ``p`` is being computed on, slot ``1-p`` is being prefetched (and
the block two iterations back is written out).  The functional model
performs the copies at issue points in Algorithm 2's exact program
order, so a mis-sequenced slot index corrupts C and is caught by the
reference comparison — this is the test that matters for double
buffering, since timing overlap is the perf model's job.

Blocking shrinks to ``pN = 32`` (from 48) so the doubled A/C tiles fit
the 64 KB LDM (Sec IV-B's capacity rule), which
``BlockingParams.paper_double().validate()`` enforces.
"""

from __future__ import annotations

from repro.arch.core_group import CoreGroup
from repro.arch.memory import MatrixHandle
from repro.core.mapping import BUF_A, BUF_C, RowMapping
from repro.core.params import BlockingParams
from repro.core.sharing import Scheme
from repro.core.variants.base import GEMMVariant, VariantTraits

__all__ = ["DoubleBufferedVariant"]


class DoubleBufferedVariant(GEMMVariant):
    """Algorithm 2: double-buffered streaming of A and C blocks."""

    traits = VariantTraits(
        name="DB", ac_mode="ROW", shared=True, double_buffered=True, kernel="naive"
    )
    scheme = Scheme.ROW
    mapping_cls = RowMapping

    def default_params(self) -> BlockingParams:
        return BlockingParams.paper_double()

    def run(
        self,
        cg: CoreGroup,
        a: MatrixHandle,
        b: MatrixHandle,
        c: MatrixHandle,
        alpha: float = 1.0,
        beta: float = 0.0,
        params: BlockingParams | None = None,
    ) -> None:
        params = params or self.default_params()
        if not params.double_buffered:
            raise ValueError(f"{self.traits.name} requires double-buffered params")
        mapping = self.mapping_cls(params)
        grid_m, grid_n, grid_k = self.prepare(cg, mapping, params, a, b, c)

        def load_slot(i: int, l: int, j: int, beta_now: float) -> None:
            slot = i % 2
            mapping.load_a(cg, a, i, l, buf=f"{BUF_A}{slot}")
            mapping.load_c(cg, c, i, j, buf=f"{BUF_C}{slot}")
            if beta_now != 1.0:
                self.scale_c(cg, f"{BUF_C}{slot}", beta_now)

        def compute(i: int) -> None:
            slot = i % 2
            self.strip_multiply(
                cg, self.scheme, alpha,
                a_buf=f"{BUF_A}{slot}", c_buf=f"{BUF_C}{slot}",
            )

        def store_slot(i: int, j: int) -> None:
            mapping.store_c(cg, c, i, j, buf=f"{BUF_C}{i % 2}")

        for j in range(grid_n):
            for l in range(grid_k):
                beta_now = beta if l == 0 else 1.0
                mapping.load_b(cg, b, l, j)
                load_slot(0, l, j, beta_now)
                if grid_m == 1:
                    compute(0)
                    store_slot(0, j)
                    continue
                # Algorithm 2, lines 6-23
                load_slot(1, l, j, beta_now)       # prefetch block 1
                compute(0)                         # overlap target
                for i in range(2, grid_m):
                    store_slot(i - 2, j)
                    load_slot(i, l, j, beta_now)
                    compute(i - 1)
                store_slot(grid_m - 2, j)
                compute(grid_m - 1)
                store_slot(grid_m - 1, j)
