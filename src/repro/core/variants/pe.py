"""The PE version: three-level blocking + collective sharing (Sec III).

Algorithm 1 verbatim: B is the reside matrix (outermost N and K loops),
and for each ``i`` the C and A blocks stream through the cluster while
the eight-step strip multiplication updates C via register
communication.  All transfers use ``PE_MODE`` with the instinctive
thread (u, v) -> block (u, v) mapping.
"""

from __future__ import annotations

from repro.arch.core_group import CoreGroup
from repro.arch.memory import MatrixHandle
from repro.core.mapping import BUF_C, PEMapping
from repro.core.params import BlockingParams
from repro.core.sharing import Scheme
from repro.core.variants.base import GEMMVariant, VariantTraits

__all__ = ["PEVariant"]


class PEVariant(GEMMVariant):
    """Three-level blocking over PE_MODE transfers."""

    traits = VariantTraits(
        name="PE", ac_mode="PE", shared=True, double_buffered=False, kernel="naive"
    )
    scheme = Scheme.PE
    mapping_cls = PEMapping

    def default_params(self) -> BlockingParams:
        return BlockingParams.paper_single()

    def run(
        self,
        cg: CoreGroup,
        a: MatrixHandle,
        b: MatrixHandle,
        c: MatrixHandle,
        alpha: float = 1.0,
        beta: float = 0.0,
        params: BlockingParams | None = None,
    ) -> None:
        params = params or self.default_params()
        if params.double_buffered:
            raise ValueError(f"{self.traits.name} is a single-buffered variant")
        mapping = self.mapping_cls(params)
        grid_m, grid_n, grid_k = self.prepare(cg, mapping, params, a, b, c)
        for j in range(grid_n):
            for l in range(grid_k):
                mapping.load_b(cg, b, l, j)
                for i in range(grid_m):
                    mapping.load_a(cg, a, i, l)
                    mapping.load_c(cg, c, i, j)
                    if l == 0:
                        self.scale_c(cg, BUF_C, beta)
                    self.strip_multiply(cg, self.scheme, alpha)
                    mapping.store_c(cg, c, i, j)
