"""Reference DGEMM used to validate every variant."""

from __future__ import annotations

import numpy as np

from repro.errors import UnsupportedShapeError

__all__ = ["reference_dgemm"]


def reference_dgemm(
    alpha: float,
    a: np.ndarray,
    b: np.ndarray,
    beta: float,
    c: np.ndarray,
) -> np.ndarray:
    """Return ``alpha * a @ b + beta * c`` (column-major, f64).

    Shapes follow the BLAS contract: ``a`` is m x k, ``b`` is k x n,
    ``c`` is m x n.  The input ``c`` is not modified.
    """
    a = np.asfortranarray(a, dtype=np.float64)
    b = np.asfortranarray(b, dtype=np.float64)
    c = np.asfortranarray(c, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or c.ndim != 2:
        raise UnsupportedShapeError("reference_dgemm operates on 2-D matrices")
    m, k = a.shape
    k2, n = b.shape
    if k != k2 or c.shape != (m, n):
        raise UnsupportedShapeError(
            f"inconsistent shapes: A {a.shape}, B {b.shape}, C {c.shape}"
        )
    return np.asfortranarray(float(alpha) * (a @ b) + float(beta) * c)
