"""Functional thread-level multiply kernels.

Three implementations of the same register-level blocking:

- :func:`tile_multiply` — the vectorised form the GEMM variants call
  (numpy does the 16 x pN x pK arithmetic in one shot);
- :func:`tile_multiply_batched` — the mesh-wide form the vectorized
  engine's stepwise mode calls: all 64 CPEs' tile multiplies of one
  sharing step as a single batched ``np.matmul``;
- :func:`register_tile_multiply` — a lane-accurate execution of the
  paper's 4x4 register blocking through
  :class:`~repro.arch.regfile.VectorRegisterFile`, issuing one ``fma``
  per conceptual ``vmad``.  It exists to prove the register tiling is
  arithmetically exact (tests cross-check it against numpy) and to
  count the vmad/load traffic the ISA model assumes.

The numpy forms produce bit-identical results for the same operand
order; the register version accumulates in a fixed k-major order numpy
``A @ B`` would not necessarily use — hence tests compare it with a
small tolerance, not equality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.arch.regfile import VectorRegisterFile

__all__ = [
    "tile_multiply",
    "tile_multiply_batched",
    "register_tile_multiply",
    "RegisterKernelCounts",
]

R_M = 4
R_N = 4
SIMD = 4


def tile_multiply(
    c_tile: np.ndarray, a_tile: np.ndarray, b_tile: np.ndarray, alpha: float = 1.0
) -> None:
    """``c_tile += alpha * a_tile @ b_tile`` in place (vectorised)."""
    if a_tile.shape[0] != c_tile.shape[0] or b_tile.shape[1] != c_tile.shape[1]:
        raise ConfigError(
            f"tile shapes inconsistent: C {c_tile.shape}, A {a_tile.shape}, "
            f"B {b_tile.shape}"
        )
    if a_tile.shape[1] != b_tile.shape[0]:
        raise ConfigError(
            f"inner dimensions differ: A {a_tile.shape}, B {b_tile.shape}"
        )
    c_tile += alpha * (a_tile @ b_tile)


def tile_multiply_batched(
    c_stack: np.ndarray,
    a_stack: np.ndarray,
    b_stack: np.ndarray,
    alpha: float = 1.0,
    out: np.ndarray | None = None,
) -> None:
    """``c_stack[t] += alpha * a_stack[t] @ b_stack[t]`` for every thread.

    The stacks are ``(64, rows, cols)`` arrays holding one tile per
    CPE; the 64 multiplies execute as one batched ``np.matmul``.  Pass
    a preallocated ``out`` (same shape as ``c_stack``) to keep the hot
    loop allocation-free.
    """
    if a_stack.shape[0] != c_stack.shape[0] or b_stack.shape[0] != c_stack.shape[0]:
        raise ConfigError(
            f"stack depths differ: C {c_stack.shape[0]}, "
            f"A {a_stack.shape[0]}, B {b_stack.shape[0]}"
        )
    prod = np.matmul(a_stack, b_stack, out=out)
    if alpha == 1.0:
        c_stack += prod
    else:
        c_stack += alpha * prod


@dataclass
class RegisterKernelCounts:
    """Instruction counts of one register-tiled multiply."""

    vmad: int = 0
    a_loads: int = 0
    b_loads: int = 0
    c_loads: int = 0
    c_stores: int = 0


def register_tile_multiply(
    regs: VectorRegisterFile,
    c_tile: np.ndarray,
    a_tile: np.ndarray,
    b_tile: np.ndarray,
    alpha: float = 1.0,
) -> RegisterKernelCounts:
    """Execute the 4x4 register blocking literally on the register file.

    Register map (matching Algorithm 3's operands):

    - ``rC[0..15]`` = registers 0..15: the 16x4 C tile, ``rC[4*i + j]``
      holding C rows ``[4*i, 4*i+4)`` of tile column ``j``;
    - ``rA[0..3]`` = registers 16..19: one column of the A panel;
    - ``rB[0..3]`` = registers 20..23: four splatted B scalars.

    ``alpha`` is folded into the A column at load time (one scale per
    load, the standard trick real kernels use so the inner loop is pure
    FMA).  Updates ``c_tile`` in place.
    """
    p_m, p_k = a_tile.shape
    p_k2, p_n = b_tile.shape
    if p_k != p_k2 or c_tile.shape != (p_m, p_n):
        raise ConfigError(
            f"tile shapes inconsistent: C {c_tile.shape}, A {a_tile.shape}, "
            f"B {b_tile.shape}"
        )
    if p_m != R_M * SIMD:
        raise ConfigError(f"register kernel covers pM = {R_M * SIMD} rows, got {p_m}")
    if p_n % R_N != 0:
        raise ConfigError(f"pN must be a multiple of rN = {R_N}, got {p_n}")

    rc0, ra0, rb0 = 0, 16, 20
    counts = RegisterKernelCounts()
    for col0 in range(0, p_n, R_N):
        # load the C accumulators for this 16x4 tile
        for i in range(R_M):
            for j in range(R_N):
                regs.write(rc0 + R_N * i + j, c_tile[SIMD * i : SIMD * i + SIMD, col0 + j])
                counts.c_loads += 1
        for kk in range(p_k):
            for i in range(R_M):
                regs.write(ra0 + i, alpha * a_tile[SIMD * i : SIMD * i + SIMD, kk])
                counts.a_loads += 1
            for j in range(R_N):
                regs.splat(rb0 + j, b_tile[kk, col0 + j])
                counts.b_loads += 1
            for i in range(R_M):
                for j in range(R_N):
                    rc = rc0 + R_N * i + j
                    regs.fma(rc, ra0 + i, rb0 + j, rc)
                    counts.vmad += 1
        # store the accumulators back
        for i in range(R_M):
            for j in range(R_N):
                c_tile[SIMD * i : SIMD * i + SIMD, col0 + j] = regs.read(rc0 + R_N * i + j)
                counts.c_stores += 1
    return counts
