"""The engine interface: execute one variant's GEMM on a core group."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.arch.core_group import CoreGroup
from repro.arch.memory import MatrixHandle
from repro.core.params import BlockingParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.variants.base import GEMMVariant

__all__ = ["Engine"]


class Engine(ABC):
    """Executes ``C = alpha*A*B + beta*C`` for a chosen variant.

    Engines share one contract: operands are resident
    :class:`~repro.arch.memory.MatrixHandle`\\ s, C is mutated in main
    memory, and afterwards the core group's DMA and
    register-communication statistics read exactly as if the device
    path had run — byte for byte, transaction for transaction.  How
    faithfully the *mechanics* in between are modelled is what
    distinguishes the implementations.
    """

    #: the ``engine=`` keyword value selecting this engine.
    name: str = "abstract"

    @abstractmethod
    def run(
        self,
        impl: "GEMMVariant",
        cg: CoreGroup,
        a: MatrixHandle,
        b: MatrixHandle,
        c: MatrixHandle,
        alpha: float = 1.0,
        beta: float = 0.0,
        params: BlockingParams | None = None,
        tracer=None,
        plan_cache=None,
    ) -> None:
        """Execute ``impl``'s program for these operands on ``cg``.

        ``tracer`` (a :class:`repro.obs.SpanTracer`, or ``None`` for
        the no-op default) receives the engine's kernel-phase spans —
        ``strip_mult`` per panel on the vectorized path, one aggregate
        ``kernel`` span on the per-CPE device path.

        ``plan_cache`` (a :class:`repro.core.engine.plans.PlanCache`,
        or ``None`` for the process-wide default) supplies compiled
        index plans to the engines that use them; the device path
        accepts and ignores it — its per-CPE mechanics *are* the
        product.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
