"""Precompiled execution plans for the stepwise vectorized engine.

The stepwise path is the library's bit-exactness anchor: it performs
the device model's arithmetic in the device model's order, so every
equivalence and property test rests on it.  Before this module it also
re-derived the same index algebra on every call — owner gather tables
from :func:`~repro.core.sharing.step_owner_indices`, the
``stack_load_* / stack_store_c`` reshape/transpose recipes, the block
origin arithmetic — and executed each sharing step as two full-stack
gathers that copied 64 tiles when only 8 were distinct.

An :class:`IndexPlan` hoists all of that out of the hot loop, compiled
once per ``(shape, variant, params, pool)`` signature:

- the **owner tables**: the full ``(GRID, GRID*GRID)`` int32 gather
  tables, plus their :class:`~repro.core.sharing.OwnerSlots`
  compression (validated against the full tables at build time), which
  turns each sharing step's two gather *copies* into two broadcast
  *views* over a 4-D reshape of the tile stacks — the step's 64 tile
  multiplies stay one batched ``np.matmul``, now reading owner tiles
  in place exactly as the register networks deliver them;
- the **copy recipes**: each mapping's
  :class:`~repro.core.mapping.StackCopySpec` (frozen reshape shapes,
  transpose axes and their inverses), applied to block origins held in
  contiguous int32 tables;
- the **4-D stack shapes** the broadcast formulation multiplies over.

Plans are immutable after build (every array is marked read-only), so
one plan is safely shared by all CG worker threads of a parallel
batch.  :class:`PlanCache` wraps them in the same LRU idiom as
:class:`~repro.core.context.ExecutionContext`'s staging-plan cache,
with eviction tied to a *byte budget* modeled on LDM pressure: the
default budget is one LDM's worth of bytes per core group served, so
shape churn cannot grow the cache without bound.  The build happens
under the cache lock — concurrent workers requesting the same
signature get exactly one build, which the ``plan.cache.builds``
counter asserts in the regression tests.

Everything here changes wall-clock only: outputs and the analytic
DMA / register-communication statistics of a planned run are
bit-identical to the unplanned stepwise path and to the device engine
(enforced by ``tests/property/test_prop_engine.py``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.core.mapping import BUF_A, BUF_B, BUF_C, StackCopySpec
from repro.core.params import GRID, BlockingParams
from repro.core.sharing import OwnerSlots, step_owner_indices, step_owner_slots
from repro.obs.tracer import ensure_tracer
from repro.utils.stats import StatsProtocol

__all__ = [
    "IndexPlan",
    "PlanCache",
    "PlanCacheStats",
    "PlanSignature",
    "default_plan_cache",
]


@dataclass(frozen=True)
class PlanSignature:
    """The cache key: everything the index tables depend on.

    The tables are pure functions of the (padded) problem shape, the
    variant (scheme + mapping + buffering contract), the thread-level
    tile sizes, and the pool scope the owning cache serves — nothing
    else.  Operand *values* never enter a plan, which is what makes
    plans shareable across threads and requests.
    """

    m: int
    n: int
    k: int
    variant: str
    p_m: int
    p_n: int
    p_k: int
    double_buffered: bool
    #: the owning cache's pool size (``n_core_groups``) — plans built
    #: for different pool scopes never alias.
    scope: int


@dataclass(frozen=True)
class PlanCacheStats(StatsProtocol):
    """Counters of one plan cache (the ``plan.cache.*`` namespace)."""

    #: lookups served by a resident plan.
    hits: int
    #: lookups that found no resident plan.
    misses: int
    #: plans actually compiled (== misses: builds happen under the
    #: cache lock, so a signature is never built twice by racing
    #: threads — the regression tests assert this equality).
    builds: int
    #: plans dropped by the byte-budget LRU.
    evictions: int
    #: resident index-table bytes (must stay <= the budget).
    bytes: int
    #: resident plans.
    plans: int


def _freeze(array: np.ndarray) -> np.ndarray:
    out = np.ascontiguousarray(array, dtype=np.int32)
    out.setflags(write=False)
    return out


class IndexPlan:
    """Every index table one stepwise execution needs, frozen.

    Built by :meth:`build` (normally via
    :meth:`PlanCache.get_or_build`) and immutable afterwards; the
    engine reads it from any number of threads concurrently.
    """

    __slots__ = (
        "signature", "scheme", "grid",
        "owner_a", "owner_b", "slots",
        "a_spec", "b_spec", "c_spec",
        "m_origins", "n_origins", "k_origins",
        "a4_shape", "b4_shape", "c4_shape",
        "nbytes",
    )

    def __init__(self, signature: PlanSignature, scheme, grid, owner_a,
                 owner_b, slots: OwnerSlots, specs, origins, shapes) -> None:
        self.signature = signature
        self.scheme = scheme
        self.grid = grid
        self.owner_a = owner_a
        self.owner_b = owner_b
        self.slots = slots
        self.a_spec, self.b_spec, self.c_spec = specs
        self.m_origins, self.n_origins, self.k_origins = origins
        self.a4_shape, self.b4_shape, self.c4_shape = shapes
        self.nbytes = (
            self.owner_a.nbytes + self.owner_b.nbytes
            + self.slots.a_slots.nbytes + self.slots.b_slots.nbytes
            + self.m_origins.nbytes + self.n_origins.nbytes
            + self.k_origins.nbytes
            + self.a_spec.nbytes + self.b_spec.nbytes + self.c_spec.nbytes
        )

    @classmethod
    def build(cls, signature: PlanSignature, impl,
              params: BlockingParams) -> "IndexPlan":
        """Compile the plan for one admissible (shape, variant) pair."""
        scheme = impl.scheme
        grid = params.check_shape(signature.m, signature.n, signature.k)
        grid_m, grid_n, grid_k = grid
        owner_a, owner_b = (
            _freeze(table) for table in step_owner_indices(scheme)
        )
        slots = step_owner_slots(scheme)
        expanded_a, expanded_b = slots.expand()
        if not (np.array_equal(expanded_a, owner_a)
                and np.array_equal(expanded_b, owner_b)):  # pragma: no cover
            raise ConfigError(
                f"owner-slot compression disagrees with the full "
                f"{scheme.value!r} gather tables — plan build aborted"
            )
        specs = impl.mapping_cls(params).copy_specs
        p = params
        return cls(
            signature=signature,
            scheme=scheme,
            grid=grid,
            owner_a=owner_a,
            owner_b=owner_b,
            slots=slots,
            specs=(specs[BUF_A], specs[BUF_B], specs[BUF_C]),
            origins=(
                _freeze(np.arange(grid_m) * p.b_m),
                _freeze(np.arange(grid_n) * p.b_n),
                _freeze(np.arange(grid_k) * p.b_k),
            ),
            shapes=(
                (GRID, GRID, p.p_m, p.p_k),
                (GRID, GRID, p.p_k, p.p_n),
                (GRID, GRID, p.p_m, p.p_n),
            ),
        )

    # -- execution surface ----------------------------------------------

    def load_a(self, mat: np.ndarray, blk_i: int, blk_l: int,
               stack: np.ndarray) -> None:
        self.a_spec.gather(mat, self.m_origins[blk_i], self.k_origins[blk_l],
                           stack)

    def load_b(self, mat: np.ndarray, blk_l: int, blk_j: int,
               stack: np.ndarray) -> None:
        self.b_spec.gather(mat, self.k_origins[blk_l], self.n_origins[blk_j],
                           stack)

    def load_c(self, mat: np.ndarray, blk_i: int, blk_j: int,
               stack: np.ndarray) -> None:
        self.c_spec.gather(mat, self.m_origins[blk_i], self.n_origins[blk_j],
                           stack)

    def store_c(self, mat: np.ndarray, blk_i: int, blk_j: int,
                stack: np.ndarray) -> None:
        self.c_spec.scatter(mat, self.m_origins[blk_i], self.n_origins[blk_j],
                            stack)

    def step_views(self, a4: np.ndarray, b4: np.ndarray,
                   step: int) -> tuple[np.ndarray, np.ndarray]:
        """The two operand views of sharing step ``step`` — no copies.

        Over the 4-D stacks, selecting the owner line and broadcasting
        it against the free mesh axis reproduces the full gather tables
        exactly (the slot compression validated at build time): entry
        ``(r, c)`` of the broadcast product multiplies the same two
        tiles ``step_owner_indices`` would have gathered, so the
        batched ``np.matmul`` performs the identical BLAS calls on the
        identical operands — bit for bit.
        """
        if self.slots.a_axis == 1:
            # pe scheme: column `step` owns A, row `step` owns B
            return a4[:, step][:, None], b4[step][None, :]
        # row scheme: the Sec IV-A ownership transpose
        return a4[step][None, :], b4[:, step][:, None]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.signature
        return (
            f"IndexPlan({s.variant} {s.m}x{s.n}x{s.k}, "
            f"grid={self.grid}, {self.nbytes} B)"
        )


class PlanCache:
    """A byte-budgeted LRU of :class:`IndexPlan`\\ s, safe across threads.

    The idiom is :class:`~repro.core.context.ExecutionContext`'s
    staging-plan cache — ``OrderedDict`` recency order, move-to-end on
    hit, evict from the cold end — applied to index plans and bounded
    by *bytes* instead of entry count.  The default budget models LDM
    pressure: one 64 KB LDM's worth of bytes per core group served
    (``spec.ldm_doubles * 8 * n_core_groups``), roughly a dozen
    resident plans per CG, so a serving tier cycling through shape bins
    keeps its working set warm while unbounded shape churn evicts
    oldest-first.

    ``get_or_build`` holds the cache lock across the build.  That is a
    deliberate throughput trade: a build costs microseconds (index
    algebra only, no operand traffic), and serializing it guarantees
    **one build per signature per cache** no matter how many CG workers
    race on the same shape — the property the ``builds`` counter
    asserts in CI.
    """

    def __init__(
        self,
        *,
        spec: SW26010Spec = DEFAULT_SPEC,
        n_core_groups: int = 1,
        max_bytes: int | None = None,
    ) -> None:
        pool = int(n_core_groups)
        if pool < 1:
            raise ConfigError(f"n_core_groups must be >= 1, got {pool}")
        if max_bytes is None:
            max_bytes = pool * spec.ldm_doubles * 8
        max_bytes = int(max_bytes)
        if max_bytes < 1:
            raise ConfigError(f"max_bytes must be >= 1, got {max_bytes}")
        self.n_core_groups = pool
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._plans: OrderedDict[PlanSignature, IndexPlan] = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._builds = 0
        self._evictions = 0

    def signature(self, impl, params: BlockingParams, m: int, n: int,
                  k: int) -> PlanSignature:
        """The cache key for one admissible call."""
        return PlanSignature(
            m=int(m), n=int(n), k=int(k),
            variant=impl.traits.name,
            p_m=params.p_m, p_n=params.p_n, p_k=params.p_k,
            double_buffered=params.double_buffered,
            scope=self.n_core_groups,
        )

    def get_or_build(self, impl, params: BlockingParams, m: int, n: int,
                     k: int, tracer=None) -> IndexPlan:
        """Return the resident plan for this signature, building at most once.

        A build is reported as a ``plan.build`` span on ``tracer`` (so
        the trace CLI's phase report separates plan compilation from
        execution time); hits cost one lock acquisition and a dict
        lookup.
        """
        sig = self.signature(impl, params, m, n, k)
        with self._lock:
            plan = self._plans.get(sig)
            if plan is not None:
                self._plans.move_to_end(sig)
                self._hits += 1
                return plan
            self._misses += 1
            with ensure_tracer(tracer).span(
                "plan.build", cat="plan", variant=sig.variant,
                m=sig.m, n=sig.n, k=sig.k,
            ):
                plan = IndexPlan.build(sig, impl, params)
            self._builds += 1
            self._plans[sig] = plan
            self._bytes += plan.nbytes
            # keep at least the plan just built: a single oversized plan
            # must still execute, it just pins the cache to one entry.
            while self._bytes > self.max_bytes and len(self._plans) > 1:
                _, victim = self._plans.popitem(last=False)
                self._bytes -= victim.nbytes
                self._evictions += 1
            return plan

    def clear(self) -> None:
        """Drop every resident plan (``Session.close`` drains through here)."""
        with self._lock:
            self._plans.clear()
            self._bytes = 0

    def stats(self) -> PlanCacheStats:
        """A consistent counter snapshot (lock-held read)."""
        with self._lock:
            return PlanCacheStats(
                hits=self._hits,
                misses=self._misses,
                builds=self._builds,
                evictions=self._evictions,
                bytes=self._bytes,
                plans=len(self._plans),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __bool__(self) -> bool:
        # a cache is always truthy — never let "empty" read as "absent"
        # at `plan_cache or default_plan_cache()` call sites.
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"PlanCache(plans={s.plans}, bytes={s.bytes}/{self.max_bytes}, "
            f"hits={s.hits}, builds={s.builds})"
        )


#: lazily built process-wide cache for callers that pass no cache of
#: their own (bare ``dgemm`` calls) — this is what makes "one build per
#: signature per process" hold by default.
_DEFAULT_CACHE: PlanCache | None = None
_DEFAULT_CACHE_LOCK = threading.Lock()


def default_plan_cache() -> PlanCache:
    """The process-wide plan cache (built on first use).

    Scoped to the chip's four core groups, so its byte budget covers
    the largest pool a bare call can be dispatched over.  Sessions and
    schedulers own *their own* caches (drained on close); this one
    backs unscoped entry points.
    """
    global _DEFAULT_CACHE
    with _DEFAULT_CACHE_LOCK:
        if _DEFAULT_CACHE is None:
            _DEFAULT_CACHE = PlanCache(n_core_groups=4)
        return _DEFAULT_CACHE
