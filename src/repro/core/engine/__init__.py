"""Execution engines: two ways to run the same GEMM program.

A :class:`~repro.core.variants.base.GEMMVariant` describes *what* the
cluster does — which mapping distributes blocks, which sharing scheme
exchanges strips, in what order tiles multiply.  An **engine** decides
*how* that program is executed by the simulation:

``device`` (:class:`DeviceEngine`)
    the fidelity path: every per-CPE DMA transfer, register-network
    broadcast and LDM tile is individually executed through the
    :mod:`repro.arch` device model, so buffer discipline, alignment
    and producer/consumer protocols are *checked*, not assumed.

``vectorized`` (:class:`VectorizedEngine`)
    the throughput path: all 64 CPEs' tiles live in one
    ``(64, rows, cols)`` stack, block transfers are strided slice
    copies, each sharing step is an index gather, and a step's 64 tile
    multiplies run as one batched ``np.matmul`` — the same arithmetic
    in the same order, minus the Python-loop object machinery.  The
    DMA/register-communication statistics the device path would have
    measured are booked analytically, so accounting is identical.

``stepwise`` (:class:`StepwiseEngine`)
    the bit-exact fast path: the vectorized engine pinned to its
    stepwise formulation, executing through cached
    :class:`~repro.core.engine.plans.IndexPlan`\\ s — results *and*
    stats match the device engine bit for bit, several times faster
    than the legacy stepwise path.

The engines mutate C in core-group main memory and are
interchangeable behind the ``engine=`` keyword of
:func:`repro.core.api.dgemm`, :func:`repro.core.batch.dgemm_batch`,
:class:`repro.multi.scheduler.CGScheduler` and
:class:`repro.core.session.Session`.  ``device`` is the default for
fidelity experiments; :meth:`Session.batch` defaults to ``vectorized``
because a served batch stream wants throughput, not protocol checking.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.core.engine.base import Engine
from repro.core.engine.device import DeviceEngine
from repro.core.engine.plans import (
    IndexPlan,
    PlanCache,
    PlanCacheStats,
    PlanSignature,
    default_plan_cache,
)
from repro.core.engine.vectorized import StepwiseEngine, VectorizedEngine

__all__ = [
    "Engine",
    "DeviceEngine",
    "VectorizedEngine",
    "StepwiseEngine",
    "IndexPlan",
    "PlanCache",
    "PlanCacheStats",
    "PlanSignature",
    "default_plan_cache",
    "ENGINES",
    "get_engine",
]

#: registry, keyed by the ``engine=`` keyword values.
ENGINES: dict[str, type[Engine]] = {
    "device": DeviceEngine,
    "vectorized": VectorizedEngine,
    "stepwise": StepwiseEngine,
}


def get_engine(name: "str | Engine") -> Engine:
    """Resolve an ``engine=`` keyword (name or instance) to an engine."""
    if isinstance(name, Engine):
        return name
    try:
        return ENGINES[str(name).lower()]()
    except KeyError:
        raise ConfigError(
            f"unknown engine {name!r}; choose from {sorted(ENGINES)}"
        ) from None
