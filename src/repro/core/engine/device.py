"""The fidelity engine: run the variant on the full device model."""

from __future__ import annotations

from repro.arch.core_group import CoreGroup
from repro.arch.memory import MatrixHandle
from repro.core.engine.base import Engine
from repro.core.params import BlockingParams
from repro.obs.registry import cg_meter
from repro.obs.tracer import ensure_tracer
from repro.resil.faults import fault_phase

__all__ = ["DeviceEngine"]


class DeviceEngine(Engine):
    """Delegates to the variant's own per-CPE execution.

    Every DMA descriptor, register-network broadcast and LDM
    allocation is individually executed and *checked* by the
    :mod:`repro.arch` device model — this is the engine that catches
    protocol bugs (undrained buffers, misaligned transfers, LDM
    overflow at runtime), at the cost of walking 64 CPE coordinates
    through Python per step.

    The variants' per-CPE loops predate the tracer, so this engine
    reports one aggregate ``kernel`` span rather than per-panel
    ``strip_mult`` spans — the vectorized engine provides the
    fine-grained breakdown.
    """

    name = "device"

    def run(
        self,
        impl,
        cg: CoreGroup,
        a: MatrixHandle,
        b: MatrixHandle,
        c: MatrixHandle,
        alpha: float = 1.0,
        beta: float = 0.0,
        params: BlockingParams | None = None,
        tracer=None,
        plan_cache=None,  # accepted for interface parity; unused here
    ) -> None:
        tracer = ensure_tracer(tracer)
        with tracer.span(
            "kernel", cat="kernel", meter=cg_meter(cg),
            variant=getattr(getattr(impl, "traits", None), "name",
                            type(impl).__name__),
            engine=self.name,
        ), fault_phase(cg.injector, "kernel"):
            if cg.injector is not None:
                cg.injector.fire("compute", cg=cg.cg_index)
            impl.run(cg, a, b, c, alpha=alpha, beta=beta, params=params)
