"""The throughput engine: mesh-wide execution over stacked tiles.

The device path simulates the cluster one CPE at a time: 64 dict
lookups and 64 tiny ``a @ b`` calls per sharing step, plus a
:class:`~repro.arch.regcomm.RegisterComm` object round trip per
broadcast.  That faithfulness is the point of the device model — and
pure overhead once the protocols are trusted.  This engine runs the
same program mesh-wide, at two fusion levels:

**Stepwise mode** (``VectorizedEngine(stepwise=True)``) is the literal
mesh-wide formulation:

- each operand's 64 thread-level tiles live in one contiguous
  ``(64, rows, cols)`` stack (the cluster's LDM, as an array), filled
  by ``DataThreadMapping.stack_load_* / stack_store_c`` — one strided
  slice copy replaces 64 per-CPE DMA calls (or 8 collective ROW_MODE
  transfers);
- a sharing step resolves through the
  :func:`~repro.core.sharing.step_owner_indices` tables — the owner
  lines' tiles land where the register networks would have delivered
  them — and all 64 tile multiplies of the step execute as one batched
  ``matmul``;
- the beta scaling is one ``stack *= beta`` over the whole C stack.

By default the stepwise path executes through a compiled
:class:`~repro.core.engine.plans.IndexPlan` (PR 8): the owner tables,
stack copy recipes, and block origins are built once per
``(shape, variant, params)`` signature, cached in an LDM-budgeted
:class:`~repro.core.engine.plans.PlanCache`, and each sharing step's
two gather *copies* become two broadcast *views* over a 4-D reshape of
the stacks — same BLAS calls on the same operands, several times
faster.  ``use_plans=False`` keeps the legacy per-call gather path
(the benchmark baseline).

It performs the identical arithmetic in the identical order as the
device path (same BLAS calls on the same operands), so its results are
bit-for-bit equal — it exists as the bridge that *proves* the index
algebra, and as the shape the real hardware's batched execution takes.

**Fused mode** (the default) goes one step further: because every
stack gather/scatter is an axis permutation and the owner tables make
each strip multiplication a plain block matrix product, the
permutations compose away — the eight sharing steps collapse into one
blocked ``C_panel += alpha * A_panel @ B_panel`` on strided views of
the operands in main memory, one BLAS call per (j, l) panel, with zero
intermediate copies.  Results then agree with the device engine to
well below the library's ``rtol=1e-12 / atol=1e-9`` comparison
tolerance (the only difference is floating-point summation *order*
inside a k-panel), which the property tests in
``tests/property/test_prop_engine.py`` enforce across all variants.

Either way the DMA / register-communication statistics are booked
analytically — per block transfer via the mapping's ``tally_*``
closed forms, per strip multiplication via
:meth:`~repro.arch.regcomm.RegCommStats.tally_broadcasts` — and match
the device engine's measured counters exactly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.arch.core_group import CoreGroup
from repro.arch.dma import DMADirection, DMAMode
from repro.arch.memory import MatrixHandle
from repro.core.engine.base import Engine
from repro.core.engine.plans import IndexPlan, default_plan_cache
from repro.core.kernel_functional import tile_multiply_batched
from repro.core.params import GRID, BlockingParams
from repro.core.sharing import Scheme, step_owner_indices
from repro.core.variants.base import check_gemm_shapes
from repro.obs.registry import cg_meter
from repro.obs.tracer import ensure_tracer
from repro.resil.faults import fault_phase

__all__ = ["VectorizedEngine", "StepwiseEngine", "TileStacks"]


def _fire(cg: CoreGroup, site: str) -> None:
    """Chaos fire point for the analytically-booked transfer sites.

    The vectorized engine never calls the per-CPE device methods, so
    the ``dma.*``/``regcomm`` fire points instrumented there are
    re-issued here at the equivalent block-transfer granularity — one
    call per block transfer group, before the tallies it represents.
    """
    injector = cg.injector
    if injector is not None:
        injector.fire(site, cg=cg.cg_index)


class TileStacks:
    """The cluster's LDM as three stacked tile arrays.

    ``a[t]``, ``b[t]``, ``c[t]`` are the tiles of flat thread ``t``
    (row-major coordinate order, matching
    :meth:`~repro.arch.mesh.CPEMesh.linear_index`).  Scratch stacks for
    the batched product (and, with ``scratch=True``, the legacy path's
    per-step gathers) are preallocated here so the hot loop performs no
    allocations at all; the planned path reads owner tiles through
    broadcast views and needs no gather scratch.
    """

    def __init__(self, params: BlockingParams, scratch: bool = True) -> None:
        n = GRID * GRID
        self.a = np.empty((n, params.p_m, params.p_k))
        self.b = np.empty((n, params.p_k, params.p_n))
        self.c = np.empty((n, params.p_m, params.p_n))
        self.a_step = np.empty_like(self.a) if scratch else None
        self.b_step = np.empty_like(self.b) if scratch else None
        self.prod = np.empty_like(self.c)


class VectorizedEngine(Engine):
    """Batched mesh-wide execution of the five variants.

    Functionally equivalent to :class:`~repro.core.engine.device.DeviceEngine`
    (same blocks, same panel order, same operands) with identical
    DMA / register-communication accounting; what it does *not* do is
    exercise the device model's runtime protocol checks — buffer
    discipline and alignment hold by construction on this path, because
    the shapes were validated by :class:`BlockingParams` up front.

    ``stepwise=True`` selects the per-step stacked-tile formulation
    (bit-identical to the device); the default fused formulation
    collapses each strip multiplication into one BLAS panel product
    (>=10x, same results to the library comparison tolerance).  The
    stepwise formulation executes through a cached
    :class:`~repro.core.engine.plans.IndexPlan` unless
    ``use_plans=False`` pins it to the legacy per-call gather path.
    """

    name = "vectorized"

    def __init__(self, stepwise: bool = False, use_plans: bool = True) -> None:
        self.stepwise = stepwise
        self.use_plans = use_plans

    def run(
        self,
        impl,
        cg: CoreGroup,
        a: MatrixHandle,
        b: MatrixHandle,
        c: MatrixHandle,
        alpha: float = 1.0,
        beta: float = 0.0,
        params: BlockingParams | None = None,
        tracer=None,
        plan_cache=None,
    ) -> None:
        name = impl.traits.name
        tracer = ensure_tracer(tracer)
        if not impl.traits.shared:
            self._run_raw(impl, cg, a, b, c, alpha, beta, tracer)
            return
        if not hasattr(impl, "scheme") or not hasattr(impl, "mapping_cls"):
            raise ConfigError(
                f"variant {name!r} has no vectorized execution; run it on "
                "the device engine"
            )
        params = params or impl.default_params()
        # the same buffering contracts the device variants enforce
        if impl.traits.double_buffered and not params.double_buffered:
            raise ValueError(f"{name} requires double-buffered params")
        if not impl.traits.double_buffered and params.double_buffered:
            raise ValueError(f"{name} is a single-buffered variant")
        params.validate(cg.spec)
        m, n, k = check_gemm_shapes(a, b, c)
        grid = params.check_shape(m, n, k)
        cg.reset_cpes()
        cg.mpe.spawn(cg.spec.n_cpes)
        mapping = impl.mapping_cls(params)
        # Double buffering changes *when* transfers are issued relative
        # to compute (Algorithm 2's overlap), not which transfers happen
        # or what they carry — so DB/SCHED share PE's block order here
        # and the cumulative statistics still match the device path
        # exactly.
        if self.stepwise:
            if self.use_plans:
                cache = (default_plan_cache() if plan_cache is None
                         else plan_cache)
                plan = cache.get_or_build(impl, params, m, n, k,
                                          tracer=tracer)
                self._shared_stepwise_planned(cg, a, b, c, alpha, beta,
                                              params, mapping, plan, tracer)
            else:
                self._shared_stepwise(impl, cg, a, b, c, alpha, beta,
                                      params, mapping, grid, tracer)
        else:
            self._shared_fused(impl, cg, a, b, c, alpha, beta,
                               params, mapping, grid, m, tracer)

    # -- the blocked, shared variants (PE / ROW / DB / SCHED) -----------

    def _shared_fused(self, impl, cg, a, b, c, alpha, beta,
                      params, mapping, grid, m, tracer) -> None:
        """One BLAS panel product per (j, l); stats booked analytically.

        The stack gathers, owner-index gathers, and write-back scatters
        are mutually inverse permutations, so the strip multiplication
        is executed directly on strided views of the operands in main
        memory.  The product lands in a transposed scratch (computed as
        ``B^T A^T``) so both the matmul output and the C accumulation
        run over column-major-aligned memory.
        """
        grid_m, grid_n, grid_k = grid
        b_m, b_n, b_k = params.b_m, params.b_n, params.b_k
        a_v = cg.memory.array(a)
        b_v = cg.memory.array(b)
        c_v = cg.memory.array(c)
        res_t = np.empty((b_n, m))
        meter = cg_meter(cg)
        for j in range(grid_n):
            jb = slice(j * b_n, (j + 1) * b_n)
            for l in range(grid_k):
                lb = slice(l * b_k, (l + 1) * b_k)
                with tracer.span("strip_mult", cat="kernel", meter=meter,
                                 j=j, l=l), fault_phase(cg.injector, "kernel"):
                    _fire(cg, "compute")
                    _fire(cg, "dma.get")
                    if l == 0 and beta != 1.0:
                        c_v[:, jb] *= beta
                    np.matmul(b_v[lb, jb].T, a_v[:, lb].T, out=res_t)
                    if alpha != 1.0:
                        res_t *= alpha
                    c_v[:, jb] += res_t.T
                    mapping.tally_load_b(cg)
                    for _ in range(grid_m):
                        _fire(cg, "dma.get")
                        mapping.tally_load_a(cg)
                        mapping.tally_load_c(cg)
                        _fire(cg, "dma.put")
                        mapping.tally_store_c(cg)
                        self._tally_sharing(cg, impl.scheme, params)

    def _shared_stepwise(self, impl, cg, a, b, c, alpha, beta,
                         params, mapping, grid, tracer) -> None:
        """The literal mesh-wide program: stacks, gathers, batched steps."""
        grid_m, grid_n, grid_k = grid
        stacks = TileStacks(params)
        idx_a, idx_b = step_owner_indices(impl.scheme)
        meter = cg_meter(cg)
        for j in range(grid_n):
            for l in range(grid_k):
                with tracer.span("strip_mult", cat="kernel", meter=meter,
                                 j=j, l=l), fault_phase(cg.injector, "kernel"):
                    _fire(cg, "compute")
                    _fire(cg, "dma.get")
                    mapping.stack_load_b(cg, b, l, j, stacks.b)
                    beta_now = beta if l == 0 else 1.0
                    for i in range(grid_m):
                        _fire(cg, "dma.get")
                        mapping.stack_load_a(cg, a, i, l, stacks.a)
                        mapping.stack_load_c(cg, c, i, j, stacks.c)
                        if beta_now != 1.0:
                            stacks.c *= beta_now
                        self._strip_multiply(cg, impl.scheme, stacks,
                                             idx_a, idx_b, alpha, params)
                        _fire(cg, "dma.put")
                        mapping.stack_store_c(cg, c, i, j, stacks.c)

    def _strip_multiply(self, cg, scheme, stacks, idx_a, idx_b,
                        alpha, params) -> None:
        """Eight sharing steps as gathers + batched multiplies."""
        for step in range(GRID):
            np.take(stacks.a, idx_a[step], axis=0, out=stacks.a_step)
            np.take(stacks.b, idx_b[step], axis=0, out=stacks.b_step)
            tile_multiply_batched(stacks.c, stacks.a_step, stacks.b_step,
                                  alpha, out=stacks.prod)
        self._tally_sharing(cg, scheme, params)

    # -- the plan-compiled stepwise path --------------------------------

    def _shared_stepwise_planned(self, cg, a, b, c, alpha, beta,
                                 params, mapping, plan: IndexPlan,
                                 tracer) -> None:
        """The stepwise program driven entirely by a compiled plan.

        Same transfers, same tallies, same fire points, same BLAS calls
        on the same operands as :meth:`_shared_stepwise` — the plan
        only removes per-call index derivation and the per-step gather
        copies (owner tiles are read through broadcast views over the
        4-D stacks).  Outputs and analytic stats are bit-identical;
        ``tests/property/test_prop_engine.py`` holds that line.
        """
        grid_m, grid_n, grid_k = plan.grid
        stacks = TileStacks(params, scratch=False)
        a_v = cg.memory.array(a)
        b_v = cg.memory.array(b)
        c_v = cg.memory.array(c)
        a4 = stacks.a.reshape(plan.a4_shape)
        b4 = stacks.b.reshape(plan.b4_shape)
        c4 = stacks.c.reshape(plan.c4_shape)
        prod4 = stacks.prod.reshape(plan.c4_shape)
        meter = cg_meter(cg)
        for j in range(grid_n):
            for l in range(grid_k):
                with tracer.span("strip_mult", cat="kernel", meter=meter,
                                 j=j, l=l), fault_phase(cg.injector, "kernel"):
                    _fire(cg, "compute")
                    _fire(cg, "dma.get")
                    plan.load_b(b_v, l, j, stacks.b)
                    mapping.tally_load_b(cg)
                    beta_now = beta if l == 0 else 1.0
                    for i in range(grid_m):
                        _fire(cg, "dma.get")
                        plan.load_a(a_v, i, l, stacks.a)
                        mapping.tally_load_a(cg)
                        plan.load_c(c_v, i, j, stacks.c)
                        mapping.tally_load_c(cg)
                        if beta_now != 1.0:
                            stacks.c *= beta_now
                        self._strip_multiply_planned(
                            cg, plan, a4, b4, c4, prod4, alpha, params)
                        _fire(cg, "dma.put")
                        plan.store_c(c_v, i, j, stacks.c)
                        mapping.tally_store_c(cg)

    def _strip_multiply_planned(self, cg, plan, a4, b4, c4, prod4,
                                alpha, params) -> None:
        """Eight sharing steps as broadcast views + batched multiplies.

        ``plan.step_views`` selects each step's owner line and
        broadcasts it against the free mesh axis, reproducing the
        owner-index gather tables exactly (validated at plan build) —
        so the batched ``matmul`` multiplies the identical tile pairs
        :func:`~repro.core.kernel_functional.tile_multiply_batched`
        would see, with the gather copies gone.  The accumulation is
        spelled exactly as there (``+= prod`` / scaled product) to keep
        the floating-point sequence, and therefore the result, bitwise
        identical.
        """
        for step in range(GRID):
            a_view, b_view = plan.step_views(a4, b4, step)
            np.matmul(a_view, b_view, out=prod4)
            if alpha == 1.0:
                c4 += prod4
            else:
                np.multiply(prod4, alpha, out=prod4)
                c4 += prod4
        self._tally_sharing(cg, plan.scheme, params)

    @staticmethod
    def _tally_sharing(cg, scheme, params) -> None:
        """Book the register traffic of one full strip multiplication.

        Per step the device path issues 8 A broadcasts and 8 B
        broadcasts (one per owner on the step's mesh lines) and 56 + 56
        receives (every CPE not on an owner line pops each operand).
        Which network carries which operand is the scheme's transpose.
        """
        _fire(cg, "regcomm")
        a_nbytes = params.p_m * params.p_k * 8
        b_nbytes = params.p_k * params.p_n * 8
        n_bcasts = GRID * GRID  # 8 owners x 8 steps
        receives = 2 * GRID * (GRID * GRID - GRID)  # 2 x 8 steps x 56
        if scheme is Scheme.PE:
            row_nbytes, col_nbytes = a_nbytes, b_nbytes
        else:
            row_nbytes, col_nbytes = b_nbytes, a_nbytes
        cg.regcomm.stats.tally_broadcasts(
            row_broadcasts=n_bcasts,
            col_broadcasts=n_bcasts,
            row_nbytes=row_nbytes,
            col_nbytes=col_nbytes,
            fanout=GRID - 1,
            receives=receives,
        )

    # -- RAW ------------------------------------------------------------

    def _run_raw(self, impl, cg, a, b, c, alpha, beta, tracer) -> None:
        """RAW's per-thread tiled triple loop, batched over the mesh.

        A tile row is shared by a whole mesh row and a B tile by a
        whole mesh column (the 8x traffic blow-up that makes RAW
        memory-bound), so the stacks are 8-deep per side and one
        broadcasting ``matmul`` covers all 64 panels.
        """
        m, n, k = check_gemm_shapes(a, b, c)
        t_m, t_n, t_k = impl.tile_geometry(m, n, k)
        panel_m, panel_n = m // GRID, n // GRID
        cg.reset_cpes()
        cg.mpe.spawn(cg.spec.n_cpes)
        tb = cg.spec.dma.transaction_bytes
        stats = cg.dma.stats
        n_cpes = GRID * GRID
        # panel-blocked views of the resident matrices (axis splits only)
        a_v = cg.memory.array(a).reshape(GRID, panel_m, k)
        b_v = cg.memory.array(b).reshape(k, GRID, panel_n)
        c_v = cg.memory.array(c).reshape(GRID, panel_m, GRID, panel_n)
        n_kk = k // t_k
        with tracer.span("kernel", cat="kernel", meter=cg_meter(cg),
                         variant=impl.traits.name, engine=self.name), \
                fault_phase(cg.injector, "kernel"):
            for ti in range(panel_m // t_m):
                rows = slice(ti * t_m, (ti + 1) * t_m)
                for tj in range(panel_n // t_n):
                    cols = slice(tj * t_n, (tj + 1) * t_n)
                    _fire(cg, "compute")
                    _fire(cg, "dma.get")
                    c_region = c_v[:, rows, :, cols]
                    c_stack = c_region.transpose(0, 2, 1, 3).copy()
                    if beta != 1.0:
                        c_stack *= beta
                    for kk in range(n_kk):
                        ks = slice(kk * t_k, (kk + 1) * t_k)
                        a_stack = a_v[:, rows, ks].copy()           # (8, tM, tK)
                        b_stack = b_v[ks, :, cols].transpose(1, 0, 2).copy()
                        prod = np.matmul(a_stack[:, None], b_stack[None, :])
                        if alpha == 1.0:
                            c_stack += prod
                        else:
                            c_stack += alpha * prod
                    _fire(cg, "dma.put")
                    c_region[:] = c_stack.transpose(0, 2, 1, 3)
                    stats.tally(DMAMode.PE, DMADirection.GET,
                                t_m * t_n * 8, t_m * t_n * 8 // tb, n_cpes)
                    stats.tally(DMAMode.PE, DMADirection.GET,
                                t_m * t_k * 8, t_m * t_k * 8 // tb, n_cpes * n_kk)
                    stats.tally(DMAMode.PE, DMADirection.GET,
                                t_k * t_n * 8, t_k * t_n * 8 // tb, n_cpes * n_kk)
                    stats.tally(DMAMode.PE, DMADirection.PUT,
                                t_m * t_n * 8, t_m * t_n * 8 // tb, n_cpes)


class StepwiseEngine(VectorizedEngine):
    """The plan-compiled stepwise formulation as a named engine.

    Registered as ``"stepwise"`` so sessions, batch items, and serve
    requests can select the bit-exact fast path by name (previously it
    was only reachable by constructing ``VectorizedEngine(stepwise=
    True)`` directly).  Results and analytic stats match the device
    engine bit for bit; wall-clock sits between the device and fused
    paths.
    """

    name = "stepwise"

    def __init__(self, use_plans: bool = True) -> None:
        super().__init__(stepwise=True, use_plans=use_plans)
