"""The collective data-sharing scheme (Sec III-B, Figure 3).

Each CG-level block multiplication is eight *strip multiplication*
steps.  In step ``s`` only one eighth of A and one eighth of B is
needed, and it lives on one mesh line; the owners broadcast it over the
register-communication networks so every CPE can update its local C
tile without touching main memory.

Role taxonomy (the paper's four thread types):

- the *diagonal* thread owns valid A **and** B — it broadcasts both and
  receives nothing;
- *A owners* broadcast A and receive B from the diagonal thread;
- *B owners* broadcast B and receive A from the diagonal thread;
- everyone else receives both.

Two schemes exist because the Sec IV-A remapping transposes ownership:

``pe`` scheme (with :class:`~repro.core.mapping.PEMapping`)
    step ``s``: mesh **column** ``s`` owns A (row-broadcasts), mesh
    **row** ``s`` owns B (column-broadcasts) — Figure 3 exactly.

``row`` scheme (with :class:`~repro.core.mapping.RowMapping`)
    step ``s``: mesh **row** ``s`` owns A (column-broadcasts), mesh
    **column** ``s`` owns B (row-broadcasts) — the swap the paper
    describes at the end of Sec IV-A.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import SharingError
from repro.arch.core_group import CoreGroup
from repro.arch.mesh import Coord
from repro.core.params import GRID

__all__ = [
    "Role",
    "role_of",
    "exchange_step",
    "step_owner_indices",
    "step_owner_slots",
    "OwnerSlots",
    "Scheme",
]


class Scheme(enum.Enum):
    """Which mesh line owns A in step ``s``."""

    PE = "pe"
    ROW = "row"


class Role(enum.Enum):
    """The four thread types of Sec III-B."""

    DIAGONAL = "diagonal"
    A_OWNER = "a_owner"
    B_OWNER = "b_owner"
    RECEIVER = "receiver"


def role_of(coord: Coord, step: int, scheme: Scheme) -> Role:
    """Classify ``coord`` for strip-multiplication step ``step``."""
    if not 0 <= step < GRID:
        raise SharingError(f"step {step} outside [0, {GRID})")
    row, col = coord
    if scheme is Scheme.PE:
        owns_a = col == step
        owns_b = row == step
    else:
        owns_a = row == step
        owns_b = col == step
    if owns_a and owns_b:
        return Role.DIAGONAL
    if owns_a:
        return Role.A_OWNER
    if owns_b:
        return Role.B_OWNER
    return Role.RECEIVER


def exchange_step(
    cg: CoreGroup,
    step: int,
    scheme: Scheme,
    a_tiles: Mapping[Coord, np.ndarray],
    b_tiles: Mapping[Coord, np.ndarray],
) -> dict[Coord, tuple[np.ndarray, np.ndarray]]:
    """Run one step of the collective sharing over the mesh networks.

    ``a_tiles`` / ``b_tiles`` map each CPE coordinate to its resident
    thread-level tile.  Returns, per CPE, the (A part, B part) operands
    for this step — the owners' local tiles, everyone else's received
    copies.  All broadcasts go through
    :class:`~repro.arch.regcomm.RegisterComm`, so buffer discipline is
    checked by the device model; the receive phase drains every buffer
    (asserted before returning, as a barrier would on hardware).
    """
    mesh = cg.mesh
    comm = cg.regcomm

    # broadcast phase: owners push their tiles into the networks
    for line in range(GRID):
        if scheme is Scheme.PE:
            a_src = Coord(line, step)   # column `step` owns A, sends along rows
            b_src = Coord(step, line)   # row `step` owns B, sends along columns
            comm.row_broadcast(a_src, a_tiles[a_src])
            comm.col_broadcast(b_src, b_tiles[b_src])
        else:
            a_src = Coord(step, line)   # row `step` owns A, sends along columns
            b_src = Coord(line, step)   # column `step` owns B, sends along rows
            comm.col_broadcast(a_src, a_tiles[a_src])
            comm.row_broadcast(b_src, b_tiles[b_src])

    # receive phase.  Role classification is resolved once per scheme
    # here — the owner lines and receive networks are fixed for the
    # whole step — and owner tiles are returned as the live LDM views
    # they already are (they were ndarrays all along; wrapping them per
    # coordinate in the hottest loop bought nothing).
    if scheme is Scheme.PE:
        recv_a, recv_b = comm.receive_row, comm.receive_col
        a_owner_axis, b_owner_axis = 1, 0  # col == step owns A, row == step owns B
    else:
        recv_a, recv_b = comm.receive_col, comm.receive_row
        a_owner_axis, b_owner_axis = 0, 1
    operands: dict[Coord, tuple[np.ndarray, np.ndarray]] = {}
    for coord in mesh.coords():
        owns_a = coord[a_owner_axis] == step
        owns_b = coord[b_owner_axis] == step
        a_part = a_tiles[coord] if owns_a else recv_a(coord).data
        b_part = b_tiles[coord] if owns_b else recv_b(coord).data
        operands[coord] = (a_part, b_part)

    comm.assert_drained()
    return operands


def step_owner_indices(scheme: Scheme) -> tuple[np.ndarray, np.ndarray]:
    """Gather indices resolving every sharing step over a tile stack.

    For tiles stacked in thread-spawn (row-major) order, entry
    ``[s, r * GRID + c]`` of each returned ``(GRID, GRID*GRID)`` array
    is the flat index of the tile CPE ``(r, c)`` operates on in step
    ``s`` — its own tile when it owns the strip, the owner's tile
    otherwise.  This is the whole sharing scheme as two index tables:
    the vectorized execution engine replays a step as two fancy-indexed
    gathers plus one batched multiply, instead of 64
    :class:`~repro.arch.regcomm.RegisterComm` round trips.
    """
    rows, cols = np.divmod(np.arange(GRID * GRID), GRID)
    steps = np.arange(GRID)[:, None]
    if scheme is Scheme.PE:
        # step s: CPE (r, c) multiplies A of (r, s) with B of (s, c)
        a_idx = rows[None, :] * GRID + steps
        b_idx = steps * GRID + cols[None, :]
    else:
        # step s: CPE (r, c) multiplies A of (s, c) with B of (r, s)
        a_idx = steps * GRID + cols[None, :]
        b_idx = rows[None, :] * GRID + steps
    return a_idx, b_idx


@dataclass(frozen=True)
class OwnerSlots:
    """The sharing scheme compressed to its mesh-line structure.

    :func:`step_owner_indices` spells each step as 64 gather entries,
    but only ``GRID`` of them are distinct — an owner tile is consumed
    by its entire mesh line.  ``a_slots[s, x]`` / ``b_slots[s, x]`` give
    the flat stack index of the tile the line with free coordinate
    ``x`` operates on in step ``s``; ``a_axis`` / ``b_axis`` name the
    mesh axis that must equal ``s`` for ownership (0 = row, 1 = column).

    Over a ``(GRID, GRID, rows, cols)`` reshape of a tile stack this
    makes each step two *views* (no gather copy at all): for the
    ``pe`` scheme, ``stack4[:, s]`` broadcast against the column axis
    is exactly ``step_owner_indices``'s A gather of step ``s``.
    """

    #: ``(GRID, GRID)`` int32, flat owner index per (step, free coord).
    a_slots: np.ndarray
    b_slots: np.ndarray
    #: mesh axis owning A / B when it equals the step (0 row, 1 column).
    a_axis: int
    b_axis: int

    def expand(self) -> tuple[np.ndarray, np.ndarray]:
        """Decompress back to :func:`step_owner_indices`'s full tables."""
        def full(slots: np.ndarray, axis: int) -> np.ndarray:
            # axis is the *owning* axis; the slot entry varies along the
            # other one, so the owning axis is where values repeat.
            grids = (
                slots[:, :, None] if axis == 1 else slots[:, None, :]
            )
            return np.broadcast_to(
                grids, (GRID, GRID, GRID)
            ).reshape(GRID, GRID * GRID)

        return full(self.a_slots, self.a_axis), full(self.b_slots, self.b_axis)


def step_owner_slots(scheme: Scheme) -> OwnerSlots:
    """Compress :func:`step_owner_indices` into per-line owner tables.

    The full tables are row- or column-constant over the mesh (an owner
    broadcasts to its whole line), so ``GRID * GRID`` int32 entries per
    operand capture the entire eight-step exchange.  The execution-plan
    layer (:mod:`repro.core.engine.plans`) builds these once per
    ``(shape, variant)`` signature and validates them against the full
    tables at build time.
    """
    steps = np.arange(GRID, dtype=np.int32)[:, None]
    lines = np.arange(GRID, dtype=np.int32)[None, :]
    if scheme is Scheme.PE:
        # A owner for mesh row r is CPE (r, s); B owner for column c is (s, c)
        a_slots = lines * GRID + steps
        b_slots = steps * GRID + lines
        a_axis, b_axis = 1, 0
    else:
        # A owner for mesh column c is CPE (s, c); B owner for row r is (r, s)
        a_slots = steps * GRID + lines
        b_slots = lines * GRID + steps
        a_axis, b_axis = 0, 1
    a_slots = np.ascontiguousarray(a_slots, dtype=np.int32)
    b_slots = np.ascontiguousarray(b_slots, dtype=np.int32)
    a_slots.setflags(write=False)
    b_slots.setflags(write=False)
    return OwnerSlots(a_slots=a_slots, b_slots=b_slots,
                      a_axis=a_axis, b_axis=b_axis)
