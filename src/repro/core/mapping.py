"""Data-thread mappings: which CPE holds which piece of a CG block.

Two mappings are implemented, matching the paper:

``PEMapping`` (Sec III-A, the "instinctive" mapping)
    the CG block is an 8x8 grid of thread-level blocks and
    ``thread(u, v)`` holds block ``(u, v)`` of each matrix, fetched with
    per-CPE ``PE_MODE`` transfers.

``RowMapping`` (Sec IV-A, the mixed-mode mapping of Figure 5)
    A and C travel in ``ROW_MODE``: column strip ``i`` of the CG block
    (all ``bM`` rows x the ``i``-th ``pX``-column slice) is delivered
    collectively to mesh row ``i``, and the hardware's 16 B round-robin
    hands CPE ``(i, j)`` the interleaved rows
    ``{r : r mod 16 in {2j, 2j+1}}``.  B stays in ``PE_MODE`` but is
    remapped for consistency: CPE ``(i, j)`` holds B's k-rows
    ``[j*pK, (j+1)*pK)`` of column strip ``i``.

Both mappings expose the same load/store interface over a
:class:`~repro.arch.core_group.CoreGroup`, so the GEMM variants differ
only in which mapping (and which sharing scheme) they instantiate.

Correctness note on the interleaving: the ROW_MODE A and C tiles of a
CPE contain the *same* row subset (both matrices are distributed by the
same hardware pattern), so the thread-local update
``C_loc += A_loc @ B`` is exact even though ``C_loc``'s rows are not
contiguous in the parent matrix.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.arch.core_group import CoreGroup
from repro.arch.dma import DMADirection, DMAMode
from repro.arch.memory import MatrixHandle
from repro.arch.mesh import Coord
from repro.core.params import GRID, BlockingParams

__all__ = ["DataThreadMapping", "PEMapping", "RowMapping", "BUF_A", "BUF_B", "BUF_C"]

#: canonical LDM buffer names used by all variants.
BUF_A = "A"
BUF_B = "B"
BUF_C = "C"


class DataThreadMapping(ABC):
    """Loads/stores CG-level blocks into/from the 64 CPEs' LDM tiles."""

    #: name used in reports ("PE_MODE" / "mixed ROW/PE").
    name: str = "abstract"

    def __init__(self, params: BlockingParams) -> None:
        self.params = params

    # tile shapes are mapping-independent
    def tile_shape(self, which: str) -> tuple[int, int]:
        p = self.params
        return {
            BUF_A: (p.p_m, p.p_k),
            BUF_B: (p.p_k, p.p_n),
            BUF_C: (p.p_m, p.p_n),
        }[which]

    def allocate(self, cg: CoreGroup, double_buffered: bool | None = None) -> None:
        """Allocate this mapping's LDM tiles on every CPE.

        Double buffering allocates A0/A1 and C0/C1 pairs plus a single
        B buffer, mirroring Algorithm 2's LDM budget.
        """
        db = self.params.double_buffered if double_buffered is None else double_buffered
        for cpe in cg.cpes():
            if db:
                cpe.ldm.alloc(f"{BUF_A}0", self.tile_shape(BUF_A))
                cpe.ldm.alloc(f"{BUF_A}1", self.tile_shape(BUF_A))
                cpe.ldm.alloc(f"{BUF_C}0", self.tile_shape(BUF_C))
                cpe.ldm.alloc(f"{BUF_C}1", self.tile_shape(BUF_C))
                cpe.ldm.alloc(BUF_B, self.tile_shape(BUF_B))
            else:
                cpe.ldm.alloc(BUF_A, self.tile_shape(BUF_A))
                cpe.ldm.alloc(BUF_B, self.tile_shape(BUF_B))
                cpe.ldm.alloc(BUF_C, self.tile_shape(BUF_C))

    # -- abstract transfer operations -----------------------------------

    @abstractmethod
    def load_a(self, cg: CoreGroup, handle: MatrixHandle, blk_i: int, blk_l: int,
               buf: str = BUF_A) -> None:
        """Load CG block (blk_i, blk_l) of A into every CPE's ``buf``."""

    @abstractmethod
    def load_b(self, cg: CoreGroup, handle: MatrixHandle, blk_l: int, blk_j: int,
               buf: str = BUF_B) -> None:
        """Load CG block (blk_l, blk_j) of B into every CPE's ``buf``."""

    @abstractmethod
    def load_c(self, cg: CoreGroup, handle: MatrixHandle, blk_i: int, blk_j: int,
               buf: str = BUF_C) -> None:
        """Load CG block (blk_i, blk_j) of C into every CPE's ``buf``."""

    @abstractmethod
    def store_c(self, cg: CoreGroup, handle: MatrixHandle, blk_i: int, blk_j: int,
                buf: str = BUF_C) -> None:
        """Store every CPE's ``buf`` back as CG block (blk_i, blk_j) of C."""

    # -- mesh-wide (stacked) transfers ----------------------------------
    #
    # The vectorized execution engine keeps all 64 CPEs' tiles of one
    # operand as a single ``(64, rows, cols)`` stack and moves a whole
    # CG block with one strided slice copy instead of 64 per-CPE DMA
    # calls.  Each ``stack_*`` method performs exactly the data
    # movement of its per-CPE counterpart above (same tiles land on the
    # same flat thread index) and books the identical DMA statistics
    # analytically through :meth:`~repro.arch.dma.DMAStats.tally`.
    # Alignment is guaranteed by construction on this path: the block
    # origins and tile shapes are the ones ``BlockingParams`` already
    # validated, the same regions the device path transfers.

    @abstractmethod
    def stack_load_a(self, cg: CoreGroup, handle: MatrixHandle, blk_i: int,
                     blk_l: int, stack: np.ndarray) -> None:
        """Load CG block (blk_i, blk_l) of A into the ``(64, pM, pK)`` stack."""

    @abstractmethod
    def stack_load_b(self, cg: CoreGroup, handle: MatrixHandle, blk_l: int,
                     blk_j: int, stack: np.ndarray) -> None:
        """Load CG block (blk_l, blk_j) of B into the ``(64, pK, pN)`` stack."""

    @abstractmethod
    def stack_load_c(self, cg: CoreGroup, handle: MatrixHandle, blk_i: int,
                     blk_j: int, stack: np.ndarray) -> None:
        """Load CG block (blk_i, blk_j) of C into the ``(64, pM, pN)`` stack."""

    @abstractmethod
    def stack_store_c(self, cg: CoreGroup, handle: MatrixHandle, blk_i: int,
                      blk_j: int, stack: np.ndarray) -> None:
        """Store the ``(64, pM, pN)`` stack back as CG block (blk_i, blk_j) of C."""

    # -- analytic DMA accounting ----------------------------------------
    #
    # One block transfer of this mapping always moves the same bytes in
    # the same number of descriptors, whatever engine executes it — so
    # the statistics are closed-form.  The ``tally_*`` methods book
    # exactly what the per-CPE ``load_*``/``store_c`` path would have
    # accumulated; ``stack_*`` uses them after its strided copy, and
    # the fused vectorized path uses them standalone (the data movement
    # there is implicit in views over main memory).

    @abstractmethod
    def tally_load_a(self, cg: CoreGroup) -> None:
        """Book the DMA statistics of one A block load."""

    @abstractmethod
    def tally_load_b(self, cg: CoreGroup) -> None:
        """Book the DMA statistics of one B block load."""

    @abstractmethod
    def tally_load_c(self, cg: CoreGroup) -> None:
        """Book the DMA statistics of one C block load."""

    @abstractmethod
    def tally_store_c(self, cg: CoreGroup) -> None:
        """Book the DMA statistics of one C block store."""

    def _tally_pe(self, cg: CoreGroup, direction: DMADirection,
                  rows: int, cols: int) -> None:
        """Book the stats of 64 per-CPE ``PE_MODE`` transfers."""
        nbytes = rows * cols * 8
        tb = cg.spec.dma.transaction_bytes
        cg.dma.stats.tally(
            DMAMode.PE, direction, nbytes, nbytes // tb,
            transfers=GRID * GRID,
        )

    def _tally_row(self, cg: CoreGroup, direction: DMADirection,
                   rows: int, cols: int) -> None:
        """Book the stats of 8 collective ``ROW_MODE`` strip transfers."""
        nbytes = rows * cols * 8
        tb = cg.spec.dma.transaction_bytes
        cg.dma.stats.tally(
            DMAMode.ROW, direction, nbytes, nbytes // tb, transfers=GRID
        )


class PEMapping(DataThreadMapping):
    """Sec III-A: thread (u, v) owns thread-level block (u, v)."""

    name = "PE_MODE"

    def load_a(self, cg, handle, blk_i, blk_l, buf=BUF_A):
        p = self.params
        for coord in cg.mesh.coords():
            cg.dma.pe_get(
                handle,
                blk_i * p.b_m + coord.row * p.p_m,
                blk_l * p.b_k + coord.col * p.p_k,
                p.p_m,
                p.p_k,
                cg.cpe(coord).ldm.get(buf),
            )

    def load_b(self, cg, handle, blk_l, blk_j, buf=BUF_B):
        p = self.params
        for coord in cg.mesh.coords():
            cg.dma.pe_get(
                handle,
                blk_l * p.b_k + coord.row * p.p_k,
                blk_j * p.b_n + coord.col * p.p_n,
                p.p_k,
                p.p_n,
                cg.cpe(coord).ldm.get(buf),
            )

    def load_c(self, cg, handle, blk_i, blk_j, buf=BUF_C):
        p = self.params
        for coord in cg.mesh.coords():
            cg.dma.pe_get(
                handle,
                blk_i * p.b_m + coord.row * p.p_m,
                blk_j * p.b_n + coord.col * p.p_n,
                p.p_m,
                p.p_n,
                cg.cpe(coord).ldm.get(buf),
            )

    def store_c(self, cg, handle, blk_i, blk_j, buf=BUF_C):
        p = self.params
        for coord in cg.mesh.coords():
            cg.dma.pe_put(
                handle,
                blk_i * p.b_m + coord.row * p.p_m,
                blk_j * p.b_n + coord.col * p.p_n,
                p.p_m,
                p.p_n,
                cg.cpe(coord).ldm.get(buf),
            )

    # -- stacked transfers ----------------------------------------------
    #
    # Thread (u, v) owns tile (u, v) of the block, so a whole block
    # load is one 4-D axis-split of the memory region (a pure view)
    # assigned into the stack in a single vectorized copy:
    # ``stack[u*8+v] = region[u*rows:(u+1)*rows, v*cols:(v+1)*cols]``.

    @staticmethod
    def _region(cg, handle, row0, col0, rows, cols) -> np.ndarray:
        return cg.memory.array(handle)[row0:row0 + rows * GRID,
                                       col0:col0 + cols * GRID]

    @staticmethod
    def _pe_gather(region: np.ndarray, stack: np.ndarray,
                   rows: int, cols: int) -> None:
        stack.reshape(GRID, GRID, rows, cols)[:] = (
            region.reshape(GRID, rows, GRID, cols).transpose(0, 2, 1, 3)
        )

    @staticmethod
    def _pe_scatter(region: np.ndarray, stack: np.ndarray,
                    rows: int, cols: int) -> None:
        region.reshape(GRID, rows, GRID, cols)[:] = (
            stack.reshape(GRID, GRID, rows, cols).transpose(0, 2, 1, 3)
        )

    def stack_load_a(self, cg, handle, blk_i, blk_l, stack):
        p = self.params
        region = self._region(cg, handle, blk_i * p.b_m, blk_l * p.b_k,
                              p.p_m, p.p_k)
        self._pe_gather(region, stack, p.p_m, p.p_k)
        self.tally_load_a(cg)

    def stack_load_b(self, cg, handle, blk_l, blk_j, stack):
        p = self.params
        region = self._region(cg, handle, blk_l * p.b_k, blk_j * p.b_n,
                              p.p_k, p.p_n)
        self._pe_gather(region, stack, p.p_k, p.p_n)
        self.tally_load_b(cg)

    def stack_load_c(self, cg, handle, blk_i, blk_j, stack):
        p = self.params
        region = self._region(cg, handle, blk_i * p.b_m, blk_j * p.b_n,
                              p.p_m, p.p_n)
        self._pe_gather(region, stack, p.p_m, p.p_n)
        self.tally_load_c(cg)

    def stack_store_c(self, cg, handle, blk_i, blk_j, stack):
        p = self.params
        region = self._region(cg, handle, blk_i * p.b_m, blk_j * p.b_n,
                              p.p_m, p.p_n)
        self._pe_scatter(region, stack, p.p_m, p.p_n)
        self.tally_store_c(cg)

    # every PE_MODE block transfer is 64 per-CPE tile descriptors
    def tally_load_a(self, cg):
        self._tally_pe(cg, DMADirection.GET, self.params.p_m, self.params.p_k)

    def tally_load_b(self, cg):
        self._tally_pe(cg, DMADirection.GET, self.params.p_k, self.params.p_n)

    def tally_load_c(self, cg):
        self._tally_pe(cg, DMADirection.GET, self.params.p_m, self.params.p_n)

    def tally_store_c(self, cg):
        self._tally_pe(cg, DMADirection.PUT, self.params.p_m, self.params.p_n)


class RowMapping(DataThreadMapping):
    """Sec IV-A: ROW_MODE for A and C, remapped PE_MODE for B."""

    name = "mixed ROW/PE"

    def load_a(self, cg, handle, blk_i, blk_l, buf=BUF_A):
        p = self.params
        for strip in range(GRID):
            cg.dma.row_get(
                handle,
                blk_i * p.b_m,
                blk_l * p.b_k + strip * p.p_k,
                p.b_m,
                p.p_k,
                cg.row_ldm_buffers(strip, buf),
            )

    def load_b(self, cg, handle, blk_l, blk_j, buf=BUF_B):
        p = self.params
        for coord in cg.mesh.coords():
            # CPE (i, j) holds k-rows [j*pK, (j+1)*pK) of column strip i
            cg.dma.pe_get(
                handle,
                blk_l * p.b_k + coord.col * p.p_k,
                blk_j * p.b_n + coord.row * p.p_n,
                p.p_k,
                p.p_n,
                cg.cpe(coord).ldm.get(buf),
            )

    def load_c(self, cg, handle, blk_i, blk_j, buf=BUF_C):
        p = self.params
        for strip in range(GRID):
            cg.dma.row_get(
                handle,
                blk_i * p.b_m,
                blk_j * p.b_n + strip * p.p_n,
                p.b_m,
                p.p_n,
                cg.row_ldm_buffers(strip, buf),
            )

    def store_c(self, cg, handle, blk_i, blk_j, buf=BUF_C):
        p = self.params
        for strip in range(GRID):
            cg.dma.row_put(
                handle,
                blk_i * p.b_m,
                blk_j * p.b_n + strip * p.p_n,
                p.b_m,
                p.p_n,
                cg.row_ldm_buffers(strip, buf),
            )

    # -- stacked transfers ----------------------------------------------
    #
    # ROW_MODE's Figure 5 interleave is a pure index permutation: block
    # row ``g*16 + 2j + t`` of column strip ``u`` lands on CPE (u, j) as
    # tile row ``2g + t``.  Splitting the block's row axis into
    # ``(groups, j, t)`` and its column axis into ``(u, cols)`` makes
    # the whole distribution one 5-D transpose between two views —
    # a single vectorized copy for all 8 collective strip transfers.

    def _row_gather(self, region: np.ndarray, stack: np.ndarray,
                    cols: int) -> None:
        p = self.params
        groups = p.b_m // 16
        stack.reshape(GRID, GRID, groups, 2, cols)[:] = (
            region.reshape(groups, GRID, 2, GRID, cols).transpose(3, 1, 0, 2, 4)
        )

    def _row_scatter(self, region: np.ndarray, stack: np.ndarray,
                     cols: int) -> None:
        p = self.params
        groups = p.b_m // 16
        region.reshape(groups, GRID, 2, GRID, cols)[:] = (
            stack.reshape(GRID, GRID, groups, 2, cols).transpose(2, 1, 3, 0, 4)
        )

    def stack_load_a(self, cg, handle, blk_i, blk_l, stack):
        p = self.params
        region = cg.memory.array(handle)[
            blk_i * p.b_m : (blk_i + 1) * p.b_m,
            blk_l * p.b_k : (blk_l + 1) * p.b_k,
        ]
        self._row_gather(region, stack, p.p_k)
        self.tally_load_a(cg)

    def stack_load_b(self, cg, handle, blk_l, blk_j, stack):
        # CPE (i, j) holds k-rows [j*pK, (j+1)*pK) of column strip i.
        p = self.params
        region = cg.memory.array(handle)[
            blk_l * p.b_k : (blk_l + 1) * p.b_k,
            blk_j * p.b_n : (blk_j + 1) * p.b_n,
        ]
        stack.reshape(GRID, GRID, p.p_k, p.p_n)[:] = (
            region.reshape(GRID, p.p_k, GRID, p.p_n).transpose(2, 0, 1, 3)
        )
        self.tally_load_b(cg)

    def stack_load_c(self, cg, handle, blk_i, blk_j, stack):
        p = self.params
        region = cg.memory.array(handle)[
            blk_i * p.b_m : (blk_i + 1) * p.b_m,
            blk_j * p.b_n : (blk_j + 1) * p.b_n,
        ]
        self._row_gather(region, stack, p.p_n)
        self.tally_load_c(cg)

    def stack_store_c(self, cg, handle, blk_i, blk_j, stack):
        p = self.params
        region = cg.memory.array(handle)[
            blk_i * p.b_m : (blk_i + 1) * p.b_m,
            blk_j * p.b_n : (blk_j + 1) * p.b_n,
        ]
        self._row_scatter(region, stack, p.p_n)
        self.tally_store_c(cg)

    # A and C ride the 8 collective ROW_MODE strips; B stays PE_MODE
    def tally_load_a(self, cg):
        self._tally_row(cg, DMADirection.GET, self.params.b_m, self.params.p_k)

    def tally_load_b(self, cg):
        self._tally_pe(cg, DMADirection.GET, self.params.p_k, self.params.p_n)

    def tally_load_c(self, cg):
        self._tally_row(cg, DMADirection.GET, self.params.b_m, self.params.p_n)

    def tally_store_c(self, cg):
        self._tally_row(cg, DMADirection.PUT, self.params.b_m, self.params.p_n)
