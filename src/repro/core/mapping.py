"""Data-thread mappings: which CPE holds which piece of a CG block.

Two mappings are implemented, matching the paper:

``PEMapping`` (Sec III-A, the "instinctive" mapping)
    the CG block is an 8x8 grid of thread-level blocks and
    ``thread(u, v)`` holds block ``(u, v)`` of each matrix, fetched with
    per-CPE ``PE_MODE`` transfers.

``RowMapping`` (Sec IV-A, the mixed-mode mapping of Figure 5)
    A and C travel in ``ROW_MODE``: column strip ``i`` of the CG block
    (all ``bM`` rows x the ``i``-th ``pX``-column slice) is delivered
    collectively to mesh row ``i``, and the hardware's 16 B round-robin
    hands CPE ``(i, j)`` the interleaved rows
    ``{r : r mod 16 in {2j, 2j+1}}``.  B stays in ``PE_MODE`` but is
    remapped for consistency: CPE ``(i, j)`` holds B's k-rows
    ``[j*pK, (j+1)*pK)`` of column strip ``i``.

Both mappings expose the same load/store interface over a
:class:`~repro.arch.core_group.CoreGroup`, so the GEMM variants differ
only in which mapping (and which sharing scheme) they instantiate.

Correctness note on the interleaving: the ROW_MODE A and C tiles of a
CPE contain the *same* row subset (both matrices are distributed by the
same hardware pattern), so the thread-local update
``C_loc += A_loc @ B`` is exact even though ``C_loc``'s rows are not
contiguous in the parent matrix.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.arch.core_group import CoreGroup
from repro.arch.memory import MatrixHandle
from repro.arch.mesh import Coord
from repro.core.params import GRID, BlockingParams

__all__ = ["DataThreadMapping", "PEMapping", "RowMapping", "BUF_A", "BUF_B", "BUF_C"]

#: canonical LDM buffer names used by all variants.
BUF_A = "A"
BUF_B = "B"
BUF_C = "C"


class DataThreadMapping(ABC):
    """Loads/stores CG-level blocks into/from the 64 CPEs' LDM tiles."""

    #: name used in reports ("PE_MODE" / "mixed ROW/PE").
    name: str = "abstract"

    def __init__(self, params: BlockingParams) -> None:
        self.params = params

    # tile shapes are mapping-independent
    def tile_shape(self, which: str) -> tuple[int, int]:
        p = self.params
        return {
            BUF_A: (p.p_m, p.p_k),
            BUF_B: (p.p_k, p.p_n),
            BUF_C: (p.p_m, p.p_n),
        }[which]

    def allocate(self, cg: CoreGroup, double_buffered: bool | None = None) -> None:
        """Allocate this mapping's LDM tiles on every CPE.

        Double buffering allocates A0/A1 and C0/C1 pairs plus a single
        B buffer, mirroring Algorithm 2's LDM budget.
        """
        db = self.params.double_buffered if double_buffered is None else double_buffered
        for cpe in cg.cpes():
            if db:
                cpe.ldm.alloc(f"{BUF_A}0", self.tile_shape(BUF_A))
                cpe.ldm.alloc(f"{BUF_A}1", self.tile_shape(BUF_A))
                cpe.ldm.alloc(f"{BUF_C}0", self.tile_shape(BUF_C))
                cpe.ldm.alloc(f"{BUF_C}1", self.tile_shape(BUF_C))
                cpe.ldm.alloc(BUF_B, self.tile_shape(BUF_B))
            else:
                cpe.ldm.alloc(BUF_A, self.tile_shape(BUF_A))
                cpe.ldm.alloc(BUF_B, self.tile_shape(BUF_B))
                cpe.ldm.alloc(BUF_C, self.tile_shape(BUF_C))

    # -- abstract transfer operations -----------------------------------

    @abstractmethod
    def load_a(self, cg: CoreGroup, handle: MatrixHandle, blk_i: int, blk_l: int,
               buf: str = BUF_A) -> None:
        """Load CG block (blk_i, blk_l) of A into every CPE's ``buf``."""

    @abstractmethod
    def load_b(self, cg: CoreGroup, handle: MatrixHandle, blk_l: int, blk_j: int,
               buf: str = BUF_B) -> None:
        """Load CG block (blk_l, blk_j) of B into every CPE's ``buf``."""

    @abstractmethod
    def load_c(self, cg: CoreGroup, handle: MatrixHandle, blk_i: int, blk_j: int,
               buf: str = BUF_C) -> None:
        """Load CG block (blk_i, blk_j) of C into every CPE's ``buf``."""

    @abstractmethod
    def store_c(self, cg: CoreGroup, handle: MatrixHandle, blk_i: int, blk_j: int,
                buf: str = BUF_C) -> None:
        """Store every CPE's ``buf`` back as CG block (blk_i, blk_j) of C."""


class PEMapping(DataThreadMapping):
    """Sec III-A: thread (u, v) owns thread-level block (u, v)."""

    name = "PE_MODE"

    def load_a(self, cg, handle, blk_i, blk_l, buf=BUF_A):
        p = self.params
        for coord in cg.mesh.coords():
            cg.dma.pe_get(
                handle,
                blk_i * p.b_m + coord.row * p.p_m,
                blk_l * p.b_k + coord.col * p.p_k,
                p.p_m,
                p.p_k,
                cg.cpe(coord).ldm.get(buf),
            )

    def load_b(self, cg, handle, blk_l, blk_j, buf=BUF_B):
        p = self.params
        for coord in cg.mesh.coords():
            cg.dma.pe_get(
                handle,
                blk_l * p.b_k + coord.row * p.p_k,
                blk_j * p.b_n + coord.col * p.p_n,
                p.p_k,
                p.p_n,
                cg.cpe(coord).ldm.get(buf),
            )

    def load_c(self, cg, handle, blk_i, blk_j, buf=BUF_C):
        p = self.params
        for coord in cg.mesh.coords():
            cg.dma.pe_get(
                handle,
                blk_i * p.b_m + coord.row * p.p_m,
                blk_j * p.b_n + coord.col * p.p_n,
                p.p_m,
                p.p_n,
                cg.cpe(coord).ldm.get(buf),
            )

    def store_c(self, cg, handle, blk_i, blk_j, buf=BUF_C):
        p = self.params
        for coord in cg.mesh.coords():
            cg.dma.pe_put(
                handle,
                blk_i * p.b_m + coord.row * p.p_m,
                blk_j * p.b_n + coord.col * p.p_n,
                p.p_m,
                p.p_n,
                cg.cpe(coord).ldm.get(buf),
            )


class RowMapping(DataThreadMapping):
    """Sec IV-A: ROW_MODE for A and C, remapped PE_MODE for B."""

    name = "mixed ROW/PE"

    def load_a(self, cg, handle, blk_i, blk_l, buf=BUF_A):
        p = self.params
        for strip in range(GRID):
            cg.dma.row_get(
                handle,
                blk_i * p.b_m,
                blk_l * p.b_k + strip * p.p_k,
                p.b_m,
                p.p_k,
                cg.row_ldm_buffers(strip, buf),
            )

    def load_b(self, cg, handle, blk_l, blk_j, buf=BUF_B):
        p = self.params
        for coord in cg.mesh.coords():
            # CPE (i, j) holds k-rows [j*pK, (j+1)*pK) of column strip i
            cg.dma.pe_get(
                handle,
                blk_l * p.b_k + coord.col * p.p_k,
                blk_j * p.b_n + coord.row * p.p_n,
                p.p_k,
                p.p_n,
                cg.cpe(coord).ldm.get(buf),
            )

    def load_c(self, cg, handle, blk_i, blk_j, buf=BUF_C):
        p = self.params
        for strip in range(GRID):
            cg.dma.row_get(
                handle,
                blk_i * p.b_m,
                blk_j * p.b_n + strip * p.p_n,
                p.b_m,
                p.p_n,
                cg.row_ldm_buffers(strip, buf),
            )

    def store_c(self, cg, handle, blk_i, blk_j, buf=BUF_C):
        p = self.params
        for strip in range(GRID):
            cg.dma.row_put(
                handle,
                blk_i * p.b_m,
                blk_j * p.b_n + strip * p.p_n,
                p.b_m,
                p.p_n,
                cg.row_ldm_buffers(strip, buf),
            )
