"""Data-thread mappings: which CPE holds which piece of a CG block.

Two mappings are implemented, matching the paper:

``PEMapping`` (Sec III-A, the "instinctive" mapping)
    the CG block is an 8x8 grid of thread-level blocks and
    ``thread(u, v)`` holds block ``(u, v)`` of each matrix, fetched with
    per-CPE ``PE_MODE`` transfers.

``RowMapping`` (Sec IV-A, the mixed-mode mapping of Figure 5)
    A and C travel in ``ROW_MODE``: column strip ``i`` of the CG block
    (all ``bM`` rows x the ``i``-th ``pX``-column slice) is delivered
    collectively to mesh row ``i``, and the hardware's 16 B round-robin
    hands CPE ``(i, j)`` the interleaved rows
    ``{r : r mod 16 in {2j, 2j+1}}``.  B stays in ``PE_MODE`` but is
    remapped for consistency: CPE ``(i, j)`` holds B's k-rows
    ``[j*pK, (j+1)*pK)`` of column strip ``i``.

Both mappings expose the same load/store interface over a
:class:`~repro.arch.core_group.CoreGroup`, so the GEMM variants differ
only in which mapping (and which sharing scheme) they instantiate.

Correctness note on the interleaving: the ROW_MODE A and C tiles of a
CPE contain the *same* row subset (both matrices are distributed by the
same hardware pattern), so the thread-local update
``C_loc += A_loc @ B`` is exact even though ``C_loc``'s rows are not
contiguous in the parent matrix.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.arch.core_group import CoreGroup
from repro.arch.dma import DMADirection, DMAMode
from repro.arch.memory import MatrixHandle
from repro.arch.mesh import Coord
from repro.core.params import GRID, BlockingParams

__all__ = [
    "DataThreadMapping",
    "PEMapping",
    "RowMapping",
    "StackCopySpec",
    "BUF_A",
    "BUF_B",
    "BUF_C",
]

#: canonical LDM buffer names used by all variants.
BUF_A = "A"
BUF_B = "B"
BUF_C = "C"


@dataclass(frozen=True)
class StackCopySpec:
    """One block transfer, precompiled to a strided view recipe.

    Every ``stack_load_* / stack_store_c`` transfer is the same pure
    index permutation: slice a ``height x width`` region out of the
    resident matrix, split its axes (``src_shape`` — views only, the
    staged matrices are contiguous), transpose (``axes``) and assign
    into the flat-thread-ordered stack.  The spec freezes those shape
    and axis tuples once per mapping/params pair, so the hot loop
    derives no indices at all; the scatter direction reuses the same
    recipe through the inverse permutation (``inv_axes``).

    Flat fancy-index tables were measured for this role and rejected:
    a ``np.take`` through a precomputed int64 index array copies
    element-wise, while these reshape/transpose assignments keep
    numpy's strided-copy fast path (~1.5-4x faster at paper size).
    The *plan* layer stores the block-origin tables as contiguous
    int32 arrays; the per-step copies stay strided.
    """

    #: region extent in the parent matrix (rows, cols).
    height: int
    width: int
    #: axis-split of the region (a pure view on the staged matrix).
    src_shape: tuple[int, ...]
    #: region-view axes -> stack-view axes (gather direction).
    axes: tuple[int, ...]
    #: the inverse permutation (scatter direction).
    inv_axes: tuple[int, ...]
    #: axis-split of the ``(64, rows, cols)`` tile stack.
    dst_shape: tuple[int, ...]

    @classmethod
    def build(
        cls,
        height: int,
        width: int,
        src_shape: tuple[int, ...],
        axes: tuple[int, ...],
        dst_shape: tuple[int, ...],
    ) -> "StackCopySpec":
        inv_axes = tuple(int(i) for i in np.argsort(axes))
        return cls(
            height=int(height),
            width=int(width),
            src_shape=tuple(int(s) for s in src_shape),
            axes=tuple(int(i) for i in axes),
            inv_axes=inv_axes,
            dst_shape=tuple(int(s) for s in dst_shape),
        )

    def gather(self, mat: np.ndarray, row0: int, col0: int,
               stack: np.ndarray) -> None:
        """Copy block ``(row0, col0)`` of ``mat`` into the tile stack."""
        region = mat[row0:row0 + self.height, col0:col0 + self.width]
        stack.reshape(self.dst_shape)[:] = (
            region.reshape(self.src_shape).transpose(self.axes)
        )

    def scatter(self, mat: np.ndarray, row0: int, col0: int,
                stack: np.ndarray) -> None:
        """Copy the tile stack back over block ``(row0, col0)`` of ``mat``."""
        region = mat[row0:row0 + self.height, col0:col0 + self.width]
        region.reshape(self.src_shape)[:] = (
            stack.reshape(self.dst_shape).transpose(self.inv_axes)
        )

    @property
    def nbytes(self) -> int:
        """Nominal footprint of the frozen recipe (budget accounting)."""
        # height/width plus three small integer tuples; 8 bytes per slot
        # is the honest order of magnitude for the cache byte budget.
        return 8 * (2 + len(self.src_shape) + 2 * len(self.axes)
                    + len(self.dst_shape))


class DataThreadMapping(ABC):
    """Loads/stores CG-level blocks into/from the 64 CPEs' LDM tiles."""

    #: name used in reports ("PE_MODE" / "mixed ROW/PE").
    name: str = "abstract"

    def __init__(self, params: BlockingParams) -> None:
        self.params = params

    # tile shapes are mapping-independent
    def tile_shape(self, which: str) -> tuple[int, int]:
        p = self.params
        return {
            BUF_A: (p.p_m, p.p_k),
            BUF_B: (p.p_k, p.p_n),
            BUF_C: (p.p_m, p.p_n),
        }[which]

    def allocate(self, cg: CoreGroup, double_buffered: bool | None = None) -> None:
        """Allocate this mapping's LDM tiles on every CPE.

        Double buffering allocates A0/A1 and C0/C1 pairs plus a single
        B buffer, mirroring Algorithm 2's LDM budget.
        """
        db = self.params.double_buffered if double_buffered is None else double_buffered
        for cpe in cg.cpes():
            if db:
                cpe.ldm.alloc(f"{BUF_A}0", self.tile_shape(BUF_A))
                cpe.ldm.alloc(f"{BUF_A}1", self.tile_shape(BUF_A))
                cpe.ldm.alloc(f"{BUF_C}0", self.tile_shape(BUF_C))
                cpe.ldm.alloc(f"{BUF_C}1", self.tile_shape(BUF_C))
                cpe.ldm.alloc(BUF_B, self.tile_shape(BUF_B))
            else:
                cpe.ldm.alloc(BUF_A, self.tile_shape(BUF_A))
                cpe.ldm.alloc(BUF_B, self.tile_shape(BUF_B))
                cpe.ldm.alloc(BUF_C, self.tile_shape(BUF_C))

    # -- abstract transfer operations -----------------------------------

    @abstractmethod
    def load_a(self, cg: CoreGroup, handle: MatrixHandle, blk_i: int, blk_l: int,
               buf: str = BUF_A) -> None:
        """Load CG block (blk_i, blk_l) of A into every CPE's ``buf``."""

    @abstractmethod
    def load_b(self, cg: CoreGroup, handle: MatrixHandle, blk_l: int, blk_j: int,
               buf: str = BUF_B) -> None:
        """Load CG block (blk_l, blk_j) of B into every CPE's ``buf``."""

    @abstractmethod
    def load_c(self, cg: CoreGroup, handle: MatrixHandle, blk_i: int, blk_j: int,
               buf: str = BUF_C) -> None:
        """Load CG block (blk_i, blk_j) of C into every CPE's ``buf``."""

    @abstractmethod
    def store_c(self, cg: CoreGroup, handle: MatrixHandle, blk_i: int, blk_j: int,
                buf: str = BUF_C) -> None:
        """Store every CPE's ``buf`` back as CG block (blk_i, blk_j) of C."""

    # -- mesh-wide (stacked) transfers ----------------------------------
    #
    # The vectorized execution engine keeps all 64 CPEs' tiles of one
    # operand as a single ``(64, rows, cols)`` stack and moves a whole
    # CG block with one strided slice copy instead of 64 per-CPE DMA
    # calls.  Each ``stack_*`` method performs exactly the data
    # movement of its per-CPE counterpart above (same tiles land on the
    # same flat thread index) and books the identical DMA statistics
    # analytically through :meth:`~repro.arch.dma.DMAStats.tally`.
    # Alignment is guaranteed by construction on this path: the block
    # origins and tile shapes are the ones ``BlockingParams`` already
    # validated, the same regions the device path transfers.

    @abstractmethod
    def stack_load_a(self, cg: CoreGroup, handle: MatrixHandle, blk_i: int,
                     blk_l: int, stack: np.ndarray) -> None:
        """Load CG block (blk_i, blk_l) of A into the ``(64, pM, pK)`` stack."""

    @abstractmethod
    def stack_load_b(self, cg: CoreGroup, handle: MatrixHandle, blk_l: int,
                     blk_j: int, stack: np.ndarray) -> None:
        """Load CG block (blk_l, blk_j) of B into the ``(64, pK, pN)`` stack."""

    @abstractmethod
    def stack_load_c(self, cg: CoreGroup, handle: MatrixHandle, blk_i: int,
                     blk_j: int, stack: np.ndarray) -> None:
        """Load CG block (blk_i, blk_j) of C into the ``(64, pM, pN)`` stack."""

    @abstractmethod
    def stack_store_c(self, cg: CoreGroup, handle: MatrixHandle, blk_i: int,
                      blk_j: int, stack: np.ndarray) -> None:
        """Store the ``(64, pM, pN)`` stack back as CG block (blk_i, blk_j) of C."""

    # -- precompiled copy recipes ---------------------------------------

    @abstractmethod
    def build_copy_specs(self) -> dict[str, StackCopySpec]:
        """Compile this mapping's block transfers to :class:`StackCopySpec`\\ s.

        Keyed by buffer (:data:`BUF_A`/:data:`BUF_B`/:data:`BUF_C`);
        the C spec serves both the load and the store direction.  The
        ``stack_*`` methods above execute through these specs, and
        :class:`repro.core.engine.plans.IndexPlan` freezes them into a
        cached plan so repeated shapes skip even the one-time build.
        """

    @property
    def copy_specs(self) -> dict[str, StackCopySpec]:
        """The compiled recipes, built once per mapping instance."""
        specs = getattr(self, "_copy_specs", None)
        if specs is None:
            specs = self.build_copy_specs()
            self._copy_specs = specs
        return specs

    # -- analytic DMA accounting ----------------------------------------
    #
    # One block transfer of this mapping always moves the same bytes in
    # the same number of descriptors, whatever engine executes it — so
    # the statistics are closed-form.  The ``tally_*`` methods book
    # exactly what the per-CPE ``load_*``/``store_c`` path would have
    # accumulated; ``stack_*`` uses them after its strided copy, and
    # the fused vectorized path uses them standalone (the data movement
    # there is implicit in views over main memory).

    @abstractmethod
    def tally_load_a(self, cg: CoreGroup) -> None:
        """Book the DMA statistics of one A block load."""

    @abstractmethod
    def tally_load_b(self, cg: CoreGroup) -> None:
        """Book the DMA statistics of one B block load."""

    @abstractmethod
    def tally_load_c(self, cg: CoreGroup) -> None:
        """Book the DMA statistics of one C block load."""

    @abstractmethod
    def tally_store_c(self, cg: CoreGroup) -> None:
        """Book the DMA statistics of one C block store."""

    def _tally_pe(self, cg: CoreGroup, direction: DMADirection,
                  rows: int, cols: int) -> None:
        """Book the stats of 64 per-CPE ``PE_MODE`` transfers."""
        nbytes = rows * cols * 8
        tb = cg.spec.dma.transaction_bytes
        cg.dma.stats.tally(
            DMAMode.PE, direction, nbytes, nbytes // tb,
            transfers=GRID * GRID,
        )

    def _tally_row(self, cg: CoreGroup, direction: DMADirection,
                   rows: int, cols: int) -> None:
        """Book the stats of 8 collective ``ROW_MODE`` strip transfers."""
        nbytes = rows * cols * 8
        tb = cg.spec.dma.transaction_bytes
        cg.dma.stats.tally(
            DMAMode.ROW, direction, nbytes, nbytes // tb, transfers=GRID
        )


class PEMapping(DataThreadMapping):
    """Sec III-A: thread (u, v) owns thread-level block (u, v)."""

    name = "PE_MODE"

    def load_a(self, cg, handle, blk_i, blk_l, buf=BUF_A):
        p = self.params
        for coord in cg.mesh.coords():
            cg.dma.pe_get(
                handle,
                blk_i * p.b_m + coord.row * p.p_m,
                blk_l * p.b_k + coord.col * p.p_k,
                p.p_m,
                p.p_k,
                cg.cpe(coord).ldm.get(buf),
            )

    def load_b(self, cg, handle, blk_l, blk_j, buf=BUF_B):
        p = self.params
        for coord in cg.mesh.coords():
            cg.dma.pe_get(
                handle,
                blk_l * p.b_k + coord.row * p.p_k,
                blk_j * p.b_n + coord.col * p.p_n,
                p.p_k,
                p.p_n,
                cg.cpe(coord).ldm.get(buf),
            )

    def load_c(self, cg, handle, blk_i, blk_j, buf=BUF_C):
        p = self.params
        for coord in cg.mesh.coords():
            cg.dma.pe_get(
                handle,
                blk_i * p.b_m + coord.row * p.p_m,
                blk_j * p.b_n + coord.col * p.p_n,
                p.p_m,
                p.p_n,
                cg.cpe(coord).ldm.get(buf),
            )

    def store_c(self, cg, handle, blk_i, blk_j, buf=BUF_C):
        p = self.params
        for coord in cg.mesh.coords():
            cg.dma.pe_put(
                handle,
                blk_i * p.b_m + coord.row * p.p_m,
                blk_j * p.b_n + coord.col * p.p_n,
                p.p_m,
                p.p_n,
                cg.cpe(coord).ldm.get(buf),
            )

    # -- stacked transfers ----------------------------------------------
    #
    # Thread (u, v) owns tile (u, v) of the block, so a whole block
    # load is one 4-D axis-split of the memory region (a pure view)
    # assigned into the stack in a single vectorized copy:
    # ``stack[u*8+v] = region[u*rows:(u+1)*rows, v*cols:(v+1)*cols]``.
    # The PE permutation (0, 2, 1, 3) is its own inverse, so gather and
    # scatter share one recipe verbatim.

    def build_copy_specs(self) -> dict[str, StackCopySpec]:
        p = self.params

        def pe(rows: int, cols: int) -> StackCopySpec:
            return StackCopySpec.build(
                height=rows * GRID,
                width=cols * GRID,
                src_shape=(GRID, rows, GRID, cols),
                axes=(0, 2, 1, 3),
                dst_shape=(GRID, GRID, rows, cols),
            )

        return {
            BUF_A: pe(p.p_m, p.p_k),
            BUF_B: pe(p.p_k, p.p_n),
            BUF_C: pe(p.p_m, p.p_n),
        }

    def stack_load_a(self, cg, handle, blk_i, blk_l, stack):
        p = self.params
        self.copy_specs[BUF_A].gather(
            cg.memory.array(handle), blk_i * p.b_m, blk_l * p.b_k, stack)
        self.tally_load_a(cg)

    def stack_load_b(self, cg, handle, blk_l, blk_j, stack):
        p = self.params
        self.copy_specs[BUF_B].gather(
            cg.memory.array(handle), blk_l * p.b_k, blk_j * p.b_n, stack)
        self.tally_load_b(cg)

    def stack_load_c(self, cg, handle, blk_i, blk_j, stack):
        p = self.params
        self.copy_specs[BUF_C].gather(
            cg.memory.array(handle), blk_i * p.b_m, blk_j * p.b_n, stack)
        self.tally_load_c(cg)

    def stack_store_c(self, cg, handle, blk_i, blk_j, stack):
        p = self.params
        self.copy_specs[BUF_C].scatter(
            cg.memory.array(handle), blk_i * p.b_m, blk_j * p.b_n, stack)
        self.tally_store_c(cg)

    # every PE_MODE block transfer is 64 per-CPE tile descriptors
    def tally_load_a(self, cg):
        self._tally_pe(cg, DMADirection.GET, self.params.p_m, self.params.p_k)

    def tally_load_b(self, cg):
        self._tally_pe(cg, DMADirection.GET, self.params.p_k, self.params.p_n)

    def tally_load_c(self, cg):
        self._tally_pe(cg, DMADirection.GET, self.params.p_m, self.params.p_n)

    def tally_store_c(self, cg):
        self._tally_pe(cg, DMADirection.PUT, self.params.p_m, self.params.p_n)


class RowMapping(DataThreadMapping):
    """Sec IV-A: ROW_MODE for A and C, remapped PE_MODE for B."""

    name = "mixed ROW/PE"

    def load_a(self, cg, handle, blk_i, blk_l, buf=BUF_A):
        p = self.params
        for strip in range(GRID):
            cg.dma.row_get(
                handle,
                blk_i * p.b_m,
                blk_l * p.b_k + strip * p.p_k,
                p.b_m,
                p.p_k,
                cg.row_ldm_buffers(strip, buf),
            )

    def load_b(self, cg, handle, blk_l, blk_j, buf=BUF_B):
        p = self.params
        for coord in cg.mesh.coords():
            # CPE (i, j) holds k-rows [j*pK, (j+1)*pK) of column strip i
            cg.dma.pe_get(
                handle,
                blk_l * p.b_k + coord.col * p.p_k,
                blk_j * p.b_n + coord.row * p.p_n,
                p.p_k,
                p.p_n,
                cg.cpe(coord).ldm.get(buf),
            )

    def load_c(self, cg, handle, blk_i, blk_j, buf=BUF_C):
        p = self.params
        for strip in range(GRID):
            cg.dma.row_get(
                handle,
                blk_i * p.b_m,
                blk_j * p.b_n + strip * p.p_n,
                p.b_m,
                p.p_n,
                cg.row_ldm_buffers(strip, buf),
            )

    def store_c(self, cg, handle, blk_i, blk_j, buf=BUF_C):
        p = self.params
        for strip in range(GRID):
            cg.dma.row_put(
                handle,
                blk_i * p.b_m,
                blk_j * p.b_n + strip * p.p_n,
                p.b_m,
                p.p_n,
                cg.row_ldm_buffers(strip, buf),
            )

    # -- stacked transfers ----------------------------------------------
    #
    # ROW_MODE's Figure 5 interleave is a pure index permutation: block
    # row ``g*16 + 2j + t`` of column strip ``u`` lands on CPE (u, j) as
    # tile row ``2g + t``.  Splitting the block's row axis into
    # ``(groups, j, t)`` and its column axis into ``(u, cols)`` makes
    # the whole distribution one 5-D transpose between two views —
    # a single vectorized copy for all 8 collective strip transfers.
    # B's remapped PE_MODE layout is the same trick in 4-D.

    def build_copy_specs(self) -> dict[str, StackCopySpec]:
        p = self.params
        groups = p.b_m // 16

        def rowed(cols: int) -> StackCopySpec:
            return StackCopySpec.build(
                height=p.b_m,
                width=cols * GRID,
                src_shape=(groups, GRID, 2, GRID, cols),
                axes=(3, 1, 0, 2, 4),
                dst_shape=(GRID, GRID, groups, 2, cols),
            )

        return {
            BUF_A: rowed(p.p_k),
            # CPE (i, j) holds k-rows [j*pK, (j+1)*pK) of column strip i.
            BUF_B: StackCopySpec.build(
                height=p.b_k,
                width=p.b_n,
                src_shape=(GRID, p.p_k, GRID, p.p_n),
                axes=(2, 0, 1, 3),
                dst_shape=(GRID, GRID, p.p_k, p.p_n),
            ),
            BUF_C: rowed(p.p_n),
        }

    def stack_load_a(self, cg, handle, blk_i, blk_l, stack):
        p = self.params
        self.copy_specs[BUF_A].gather(
            cg.memory.array(handle), blk_i * p.b_m, blk_l * p.b_k, stack)
        self.tally_load_a(cg)

    def stack_load_b(self, cg, handle, blk_l, blk_j, stack):
        p = self.params
        self.copy_specs[BUF_B].gather(
            cg.memory.array(handle), blk_l * p.b_k, blk_j * p.b_n, stack)
        self.tally_load_b(cg)

    def stack_load_c(self, cg, handle, blk_i, blk_j, stack):
        p = self.params
        self.copy_specs[BUF_C].gather(
            cg.memory.array(handle), blk_i * p.b_m, blk_j * p.b_n, stack)
        self.tally_load_c(cg)

    def stack_store_c(self, cg, handle, blk_i, blk_j, stack):
        p = self.params
        self.copy_specs[BUF_C].scatter(
            cg.memory.array(handle), blk_i * p.b_m, blk_j * p.b_n, stack)
        self.tally_store_c(cg)

    # A and C ride the 8 collective ROW_MODE strips; B stays PE_MODE
    def tally_load_a(self, cg):
        self._tally_row(cg, DMADirection.GET, self.params.b_m, self.params.p_k)

    def tally_load_b(self, cg):
        self._tally_pe(cg, DMADirection.GET, self.params.p_k, self.params.p_n)

    def tally_load_c(self, cg):
        self._tally_row(cg, DMADirection.GET, self.params.b_m, self.params.p_n)

    def tally_store_c(self, cg):
        self._tally_row(cg, DMADirection.PUT, self.params.b_m, self.params.p_n)
