"""The paper's contribution: three-level blocked DGEMM on one CG.

- :mod:`repro.core.params` — blocking parameters and the hardware
  constraints they must satisfy (LDM capacity, DMA granularity,
  register budget);
- :mod:`repro.core.model` — the closed-form bandwidth/blocking model of
  Sec III-C;
- :mod:`repro.core.mapping` — the two data-thread mappings: the
  instinctive PE_MODE mapping of Sec III-A and the interleaved
  mixed-mode mapping of Sec IV-A (Figure 5);
- :mod:`repro.core.sharing` — the collective data-sharing roles of
  Sec III-B (Figure 3) executed over the register-communication mesh;
- :mod:`repro.core.kernel_functional` — the register-tile multiply,
  both a lane-accurate register-file version and the vectorised one
  the variants use;
- :mod:`repro.core.variants` — RAW / PE / ROW / DB / SCHED;
- :mod:`repro.core.engine` — the two execution engines: the checked
  per-CPE ``device`` path and the mesh-wide ``vectorized`` path
  (stacked tiles, batched matmuls, identical accounting);
- :mod:`repro.core.context` — scoped staging of operands in CG main
  memory (unique handles, free-on-exit, staging-plan cache);
- :mod:`repro.core.api` — the public ``dgemm`` entry point;
- :mod:`repro.core.session` — the :class:`Session` facade that owns a
  device, a warm staging context, and a multi-CG batch pool — the
  documented entry point for callers who don't want to plumb devices;
- :mod:`repro.core.reference` — the numpy reference.
"""

from repro.core.params import BlockingParams
from repro.core.model import (
    bandwidth_reduction,
    required_bandwidth,
    min_block_n,
    ldm_doubles,
    register_budget,
    register_bandwidth_reduction,
    optimal_register_tile,
)
from repro.core.reference import reference_dgemm
from repro.core.context import ContextStats, ExecutionContext
from repro.core.api import dgemm
from repro.core.engine import ENGINES, get_engine
from repro.core.variants import VARIANTS, get_variant
from repro.core.batch import BatchItem, BatchResult, dgemm_batch, validate_items

# imported last: Session pulls in repro.multi, which imports the
# submodules above — reordering this import recreates the cycle.
from repro.core.session import Session, SessionStats

__all__ = [
    "ContextStats",
    "ExecutionContext",
    "Session",
    "SessionStats",
    "BatchItem",
    "BatchResult",
    "dgemm_batch",
    "validate_items",
    "BlockingParams",
    "bandwidth_reduction",
    "required_bandwidth",
    "min_block_n",
    "ldm_doubles",
    "register_budget",
    "register_bandwidth_reduction",
    "optimal_register_tile",
    "reference_dgemm",
    "dgemm",
    "VARIANTS",
    "get_variant",
    "ENGINES",
    "get_engine",
]
