"""Public DGEMM entry point.

``dgemm`` wraps the whole device pipeline: stage operands into the core
group's main memory, run the chosen variant's functional execution, and
read the result back.  It mirrors the BLAS contract (non-transposed,
column-major, f64) with the paper's shape restriction — dimensions must
be multiples of the CG block factors — relaxed by ``pad=True``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import UnsupportedShapeError
from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.arch.core_group import CoreGroup
from repro.core.params import BlockingParams
from repro.core.reference import reference_dgemm
from repro.core.variants import get_variant

__all__ = ["dgemm"]


def _apply_trans(name: str, flag: str, array: np.ndarray) -> np.ndarray:
    """Resolve a BLAS trans flag by MPE-side staging (extension)."""
    flag = str(flag).upper()
    if flag == "N":
        return array
    if flag == "T":
        return np.asfortranarray(array.T)
    raise UnsupportedShapeError(
        f"{name} must be 'N' or 'T', got {flag!r} (conjugate transpose "
        "is meaningless for real matrices)"
    )


def _pad_to(array: np.ndarray, rows: int, cols: int) -> np.ndarray:
    out = np.zeros((rows, cols), dtype=np.float64, order="F")
    out[: array.shape[0], : array.shape[1]] = array
    return out


def dgemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    alpha: float = 1.0,
    beta: float = 0.0,
    transa: str = "N",
    transb: str = "N",
    variant: str = "SCHED",
    params: BlockingParams | None = None,
    spec: SW26010Spec = DEFAULT_SPEC,
    core_group: CoreGroup | None = None,
    pad: bool = False,
    check: bool = False,
) -> np.ndarray:
    """Compute ``alpha * a @ b + beta * c`` on the simulated CG.

    Parameters
    ----------
    a, b, c:
        f64 matrices (any memory order; staged column-major).  ``c``
        may be omitted when ``beta == 0``.
    transa, transb:
        ``"N"`` or ``"T"``.  The paper implements only the
        non-transposed case; ``"T"`` is an extension handled by staging
        an explicit transpose on the MPE before the CG kernel runs (the
        approach production libraries use for unsupported layouts).
    variant:
        one of ``RAW``, ``PE``, ``ROW``, ``DB``, ``SCHED`` (default:
        the paper's best version).
    params:
        blocking parameters; defaults to the variant's paper values.
        Pass :meth:`BlockingParams.small` for fast experimentation.
    core_group:
        reuse an existing device (e.g. to accumulate DMA statistics);
        a fresh one is built otherwise.
    pad:
        zero-pad dimensions up to the CG block factors instead of
        raising :class:`~repro.errors.UnsupportedShapeError` — an
        extension beyond the paper, which only handles exact multiples.
    check:
        verify the result against the numpy reference and raise
        ``AssertionError`` on mismatch (debugging aid).

    Returns
    -------
    numpy.ndarray
        the m x n result, column-major.
    """
    impl = get_variant(variant)
    params = params or impl.default_params()

    a = np.asfortranarray(a, dtype=np.float64)
    b = np.asfortranarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise UnsupportedShapeError("dgemm operates on 2-D matrices")
    a = _apply_trans("transa", transa, a)
    b = _apply_trans("transb", transb, b)
    m, k = a.shape
    k2, n = b.shape
    if k2 != k:
        raise UnsupportedShapeError(f"A is {a.shape} but B is {b.shape}")
    if c is None:
        if beta != 0.0:
            raise UnsupportedShapeError("beta != 0 requires an input C")
        c = np.zeros((m, n), dtype=np.float64, order="F")
    else:
        c = np.asfortranarray(c, dtype=np.float64)
        if c.shape != (m, n):
            raise UnsupportedShapeError(f"C is {c.shape}, expected {(m, n)}")

    pm, pn, pk = m, n, k
    if pad:
        pm = -(-m // params.b_m) * params.b_m
        pn = -(-n // params.b_n) * params.b_n
        pk = -(-k // params.b_k) * params.b_k

    cg = core_group or CoreGroup(spec)
    ha = cg.memory.store("dgemm.A", a if (pm, pk) == (m, k) else _pad_to(a, pm, pk))
    hb = cg.memory.store("dgemm.B", b if (pk, pn) == (k, n) else _pad_to(b, pk, pn))
    hc = cg.memory.store("dgemm.C", c if (pm, pn) == (m, n) else _pad_to(c, pm, pn))

    impl.run(cg, ha, hb, hc, alpha=alpha, beta=beta, params=params)

    result = cg.memory.read(hc)[:m, :n]
    if core_group is None:
        for name in ("dgemm.A", "dgemm.B", "dgemm.C"):
            cg.memory.free(name)
    if check:
        expected = reference_dgemm(alpha, a, b, beta, c)
        if not np.allclose(result, expected, rtol=1e-12, atol=1e-9):
            worst = float(np.max(np.abs(result - expected)))
            raise AssertionError(
                f"{impl.traits.name} result deviates from reference "
                f"(max abs err {worst:.3e})"
            )
    return result
