"""Public DGEMM entry point.

``dgemm`` wraps the whole device pipeline: stage operands into the core
group's main memory, run the chosen variant's functional execution, and
read the result back.  It mirrors the BLAS contract (non-transposed,
column-major, f64) with the paper's shape restriction — dimensions must
be multiples of the CG block factors — relaxed by ``pad=True``.

Staging goes through a scoped :class:`~repro.core.context.ExecutionContext`:
operands get context-unique handle names (so concurrent calls sharing a
core group cannot clobber each other), each operand costs at most one
host-side copy, and every staged handle is freed when the scope exits —
including when a variant raises — so ``MainMemory.used_bytes`` always
returns to its pre-call baseline.  Pass ``context=`` to share staging
plans across calls (the batched hot path).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.api import apply_trans, as_gemm_request
from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.arch.core_group import CoreGroup
from repro.core.context import ExecutionContext
from repro.core.engine import get_engine
from repro.core.engine.plans import default_plan_cache
from repro.core.params import BlockingParams
from repro.core.reference import reference_dgemm
from repro.core.variants import get_variant
from repro.obs.registry import (
    cg_meter,
    combine_meters,
    context_meter,
    plan_cache_meter,
)
from repro.obs.tracer import ensure_tracer
from repro.resil.faults import fault_phase

__all__ = ["dgemm"]

# re-exported for callers that used the private helper (dgemm4 did);
# the implementation now lives on the typed surface.
_apply_trans = apply_trans


def dgemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    alpha: float = 1.0,
    beta: float = 0.0,
    transa: str = "N",
    transb: str = "N",
    variant: str = "SCHED",
    engine: str = "device",
    params: BlockingParams | None = None,
    spec: SW26010Spec = DEFAULT_SPEC,
    core_group: CoreGroup | None = None,
    context: ExecutionContext | None = None,
    pad: bool = False,
    check: bool = False,
    tracer=None,
    plan_cache=None,
    **legacy: Any,
) -> np.ndarray:
    """Compute ``alpha * a @ b + beta * c`` on the simulated CG.

    Parameters
    ----------
    a, b, c:
        f64 matrices (any memory order; staged column-major).  ``c``
        may be omitted when ``beta == 0``.
    transa, transb:
        ``"N"`` or ``"T"``.  The paper implements only the
        non-transposed case; ``"T"`` is an extension handled by staging
        an explicit transpose on the MPE before the CG kernel runs (the
        approach production libraries use for unsupported layouts).
        The legacy spellings ``trans``/``trans_a``/``trans_b`` are
        still accepted with a :class:`DeprecationWarning` — every call
        is normalized through :func:`repro.api.as_gemm_request`.
    variant:
        one of ``RAW``, ``PE``, ``ROW``, ``DB``, ``SCHED`` (default:
        the paper's best version).
    engine:
        ``"device"`` (default) executes every per-CPE transfer and
        broadcast through the checked device model; ``"vectorized"``
        runs the same program mesh-wide over stacked tiles (batched
        ``np.matmul`` per sharing step) — same results to at least
        rtol=1e-12, identical traffic statistics, an order of
        magnitude faster; ``"stepwise"`` is the plan-compiled
        stacked-tile formulation, *bit-identical* to the device engine
        and several times faster than rebuilding its index algebra per
        call.  See :mod:`repro.core.engine`.
    params:
        blocking parameters; defaults to the variant's paper values.
        Pass :meth:`BlockingParams.small` for fast experimentation.
    core_group:
        low-level escape hatch: reuse an existing device (e.g. to
        accumulate DMA statistics); a fresh one is built otherwise.
        Staged operands are always freed on return, so sharing a
        device never leaks its byte budget.  Callers who don't need
        explicit device management should use
        :class:`repro.core.session.Session` instead.
    context:
        stage through an existing :class:`ExecutionContext` instead of
        a per-call scope.  Same-shape calls then reuse staging
        allocations in place, and the *context's* owner decides when
        the handles are freed.  Mutually consistent with
        ``core_group`` (they must name the same device).
    pad:
        zero-pad dimensions up to the CG block factors instead of
        raising :class:`~repro.errors.UnsupportedShapeError` — an
        extension beyond the paper, which only handles exact multiples.
    check:
        verify the result against the numpy reference and raise
        ``AssertionError`` on mismatch (debugging aid).
    tracer:
        a :class:`repro.obs.SpanTracer` to record phase spans into
        (``dgemm`` → ``stage_A``/``stage_B``/``stage_C``/``strip_mult``
        /``store_C``, plus ``plan.build`` when an execution plan is
        compiled) with counter deltas attached; ``None`` (the default)
        resolves to the no-op tracer.
    plan_cache:
        a :class:`repro.core.engine.plans.PlanCache` supplying compiled
        index plans to the plan-aware engines; ``None`` (the default)
        uses the process-wide cache, so repeated shapes build their
        plan exactly once per process.  Sessions and schedulers pass
        their own (drained on close).

    Returns
    -------
    numpy.ndarray
        the m x n result, column-major.
    """
    request = as_gemm_request(
        a, b, c, alpha=alpha, beta=beta, transa=transa, transb=transb,
        legacy=legacy, caller="dgemm",
    )
    impl = get_variant(variant)
    eng = get_engine(engine)
    params = params or impl.default_params()

    a = apply_trans(
        "transa", request.transa, np.asarray(request.a, dtype=np.float64)
    )
    b = apply_trans(
        "transb", request.transb, np.asarray(request.b, dtype=np.float64)
    )
    m, k = a.shape
    k2, n = b.shape
    c = request.c
    if c is not None:
        c = np.asarray(c, dtype=np.float64)

    pm, pn, pk = (params.pad_shape(m, n, k) if pad else (m, n, k))

    tracer = ensure_tracer(tracer)
    pc = default_plan_cache() if plan_cache is None else plan_cache
    with ExecutionContext.scoped(context, core_group, spec) as ctx, ctx.executing():
        cg = ctx.core_group
        with tracer.span(
            "dgemm", cat="dgemm",
            meter=combine_meters(context_meter(ctx), plan_cache_meter(pc)),
            m=m, n=n, k=k, variant=str(variant).upper(), engine=eng.name,
            flops=2 * m * n * k,
        ):
            meter = cg_meter(cg)
            injector = cg.injector
            with tracer.span("stage_A", cat="stage", meter=meter), \
                    fault_phase(injector, "stage_A"):
                ha = ctx.stage("A", a, rows=pm, cols=pk)
            with tracer.span("stage_B", cat="stage", meter=meter), \
                    fault_phase(injector, "stage_B"):
                hb = ctx.stage("B", b, rows=pk, cols=pn)
            with tracer.span("stage_C", cat="stage", meter=meter), \
                    fault_phase(injector, "stage_C"):
                hc = (
                    ctx.stage("C", c, rows=pm, cols=pn)
                    if c is not None
                    else ctx.stage_zeros("C", pm, pn)
                )
            eng.run(impl, cg, ha, hb, hc, alpha=alpha, beta=beta,
                    params=params, tracer=tracer, plan_cache=pc)
            with tracer.span("store_C", cat="stage", meter=meter), \
                    fault_phase(injector, "store_C"):
                result = np.array(cg.memory.array(hc)[:m, :n], order="F",
                                  copy=True)

    if check:
        base = c if c is not None else np.zeros((m, n), dtype=np.float64, order="F")
        expected = reference_dgemm(alpha, a, b, beta, base)
        if not np.allclose(result, expected, rtol=1e-12, atol=1e-9):
            worst = float(np.max(np.abs(result - expected)))
            raise AssertionError(
                f"{impl.traits.name} result deviates from reference "
                f"(max abs err {worst:.3e})"
            )
    return result
