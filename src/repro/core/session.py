"""The one-true entry point: a session that owns device, context, pool.

The layers below are deliberately explicit — ``dgemm`` takes a
``core_group``/``context``, ``dgemm_batch`` takes a device or a
processor, ``CGScheduler`` wants a pool — and that explicitness is the
right *low-level* surface.  But a caller who just wants the paper's
DGEMM served fast should not have to thread devices and contexts by
hand.  :class:`Session` is that caller's API:

    with Session(n_core_groups=4) as s:
        y = s.dgemm(a, b)                # scalar call, staging kept warm
        r = s.batch(items)               # dispatched across the CG pool
        print(s.stats())                 # cumulative session accounting

One session owns one :class:`~repro.multi.processor.SW26010Processor`,
a long-lived scalar :class:`~repro.core.context.ExecutionContext` on
CG 0 (so repeated same-shape ``dgemm`` calls hit the staging-plan
cache), and a :class:`~repro.multi.scheduler.CGScheduler` over the
requested pool for batches.  Closing the session (context-manager exit
or :meth:`close`) frees every staged handle, returning each CG's
``MainMemory.used_bytes`` to its pre-session baseline.

Sessions accumulate accounting *across* calls: :meth:`stats` reports
calls, items, failures, flops and the summed per-context traffic since
the session opened.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigError, UnsupportedShapeError
from repro.api import (
    DEFAULT_SUBMIT_OPTIONS,
    ConvRequest,
    GemmRequest,
    LuRequest,
    Request,
    RequestError,
    RequestResult,
    SubmitOptions,
    as_request,
    format_bin,
)
from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.core.api import dgemm as _dgemm
from repro.core.context import ContextStats, ExecutionContext
from repro.core.params import BlockingParams
from repro.core.variants import get_variant
from repro.multi.processor import SW26010Processor
from repro.multi.scheduler import CGScheduler, ScheduleResult
from repro.obs.tracer import ensure_tracer
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.resil.faults import FaultInjector
from repro.resil.policy import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.tuning.table import TuningTable
from repro.utils.stats import StatsProtocol

__all__ = ["Session", "SessionStats"]


@dataclass(frozen=True)
class SessionStats(StatsProtocol):
    """Cumulative accounting for one session.

    Carries the uniform :class:`~repro.utils.stats.StatsProtocol`
    surface (``as_dict``/``delta``/``plus``/``zero``), with the nested
    ``traffic`` record combined recursively — two sessions' stats sum
    with one ``plus``, and a before/after pair diffs with one ``delta``.
    """

    #: scalar ``session.dgemm`` calls.
    calls: int
    #: ``session.batch`` invocations.
    batches: int
    #: batch items executed (successes + failures).
    items: int
    #: batch items that raised (isolated per-item failures).
    failures: int
    #: logical flops of successful work, ``2*m*n*k`` per multiply.
    flops: int
    #: flops the device executed after padding.
    padded_flops: int
    #: summed staging/DMA/regcomm traffic across every context used.
    traffic: ContextStats


class Session:
    """A stateful facade over device, context and scheduler.

    Parameters mirror :func:`repro.core.api.dgemm` where they overlap;
    ``pad`` defaults to True (a session exists to serve arbitrary
    shapes) and ``n_core_groups`` sizes the batch-dispatch pool (scalar
    calls always run on CG 0).  Usable as a context manager or via an
    explicit :meth:`close`; a closed session raises on use.

    ``tracer=`` (a :class:`repro.obs.SpanTracer`) turns on phase-level
    telemetry: ``session.batch`` → ``cg_dispatch`` → ``dgemm`` →
    ``stage_*``/``strip_mult``/``store_C`` spans with counter deltas,
    exportable as a Chrome trace via :mod:`repro.obs.export`.  The
    default ``None`` is the no-op tracer (<=2% overhead budget on the
    untraced path).

    Resilience is on by default for batches: ``retry_policy`` (two
    bit-exact retries of transiently faulted items) and
    ``fallback_engine="auto"`` (a failed vectorized item re-runs once
    on the checked ``device`` engine) cost nothing on clean runs.  Pass
    ``injector=`` (a :class:`repro.resil.FaultInjector`) to chaos-test:
    it is wired through every CG's devices, batch items recover per the
    ladder in :mod:`repro.resil`, and :meth:`resil_stats` /
    ``result.fault_reports`` expose what happened.  Scalar
    :meth:`dgemm` calls are *not* retried — a fault there propagates to
    the caller.
    """

    def __init__(
        self,
        *,
        variant: str = "SCHED",
        engine: str | None = None,
        params: BlockingParams | None = None,
        spec: SW26010Spec = DEFAULT_SPEC,
        processor: SW26010Processor | None = None,
        n_core_groups: int | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        pad: bool = True,
        check: bool = False,
        tracer=None,
        injector: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = DEFAULT_RETRY_POLICY,
        fallback_engine: str | None = "auto",
        tuned: TuningTable | str | None = None,
        policy: str = "binned",
    ) -> None:
        self.tracer = ensure_tracer(tracer)
        self.variant = str(variant).upper()
        # None means "per-path default": scalar dgemm keeps the checked
        # device model (fidelity), while batch dispatch — the throughput
        # path a session exists to serve — runs the vectorized engine.
        # Pass an explicit engine to force one choice everywhere.
        self.engine = None if engine is None else str(engine).lower()
        # the learned table only fills in *defaulted* blocking; explicit
        # params= pins every call to exactly those parameters.
        self._explicit_params = params is not None
        self._calibration = calibration
        self.params = params or get_variant(self.variant).default_params()
        self.pad = pad
        self.check = check
        self.processor = processor or SW26010Processor(spec)
        self.injector = injector
        batch_engine = self.engine or "vectorized"
        if fallback_engine == "auto":
            # degrade the fast batch engines to the checked device model;
            # a forced single engine has nowhere sensible to fall to.
            fallback_engine = (
                "device" if batch_engine in ("vectorized", "stepwise")
                else None
            )
        self.scheduler = CGScheduler(
            self.processor,
            n_core_groups=n_core_groups,
            variant=self.variant,
            engine=batch_engine,
            params=params,
            calibration=calibration,
            pad=pad,
            check=check,
            tracer=self.tracer,
            injector=injector,
            retry_policy=retry_policy,
            fallback_engine=fallback_engine,
            tuned=tuned,
            policy=policy,
        )
        #: the loaded learned table (``None`` unless ``tuned=`` given);
        #: shared with the scheduler, so both consult one fallback cache.
        self.tuned = self.scheduler.tuned
        #: the scheduler's pool-wide plan cache, shared by scalar calls
        #: too — one compiled plan serves both entry points.
        self.plan_cache = self.scheduler.plan_cache
        self._ctx = ExecutionContext(self.processor.cg(0))
        self._ctx_open = False
        self._closed = False
        #: serializes close() against itself — double-close from two
        #: threads (server shutdown racing a with-block exit) must tear
        #: down exactly once; scheduler.close() additionally waits out
        #: any in-flight batch on the scheduler's own run guard.
        self._close_lock = threading.Lock()
        #: guards the cumulative accounting fold (concurrent submit()
        #: callers each fold their own deltas).
        self._stats_lock = threading.Lock()
        self._calls = 0
        self._batches = 0
        self._items = 0
        self._failures = 0
        self._flops = 0
        self._padded_flops = 0
        self._traffic = ContextStats.zero()

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "Session":
        self._require_open()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Free every staged handle this session holds.

        Idempotent, and safe to call concurrently — with another
        ``close()`` or with an in-flight :meth:`batch`: the first
        caller wins the close lock and marks the session closed;
        :meth:`CGScheduler.close
        <repro.multi.scheduler.CGScheduler.close>` then waits for any
        in-flight run to drain before releasing the worker pool, so
        live workers never lose their contexts mid-item.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        # scheduler first: its close() blocks on the run guard, so an
        # in-flight batch finishes before any teardown proceeds (and it
        # drains the shared plan cache on the way out).
        self.scheduler.close()
        if self._ctx_open:
            self._ctx.__exit__(None, None, None)
            self._ctx_open = False
        else:
            self._ctx.close()

    @property
    def n_core_groups(self) -> int:
        """Size of the batch-dispatch pool."""
        return self.scheduler.n_core_groups

    def _require_open(self) -> None:
        if self._closed:
            raise ConfigError("this Session is closed")

    def _scalar_context(self) -> ExecutionContext:
        # entered lazily and kept open for the session's lifetime, so
        # repeated same-shape calls restage in place instead of
        # reallocating; close() frees everything.
        if not self._ctx_open:
            self._ctx.__enter__()
            self._ctx_open = True
        return self._ctx

    # -- entry points --------------------------------------------------

    def dgemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray | None = None,
        *,
        alpha: float = 1.0,
        beta: float = 0.0,
        transa: str = "N",
        transb: str = "N",
        engine: str | None = None,
        pad: bool | None = None,
        check: bool | None = None,
        **legacy,
    ) -> np.ndarray:
        """One multiply on CG 0, staging kept warm across calls.

        ``engine=`` overrides the session's engine for this call;
        scalar calls default to ``"device"`` (full protocol checking)
        unless the session was built with an explicit ``engine=``.
        Legacy kwarg spellings (``trans``/``trans_a``/...) pass through
        to the normalization funnel, which warns and maps them.

        With ``tuned=`` configured (and no explicit session ``params=``)
        the call's blocking comes from the learned table for this
        shape's bin, estimator fallback on a miss — the same resolution
        batch dispatch uses.
        """
        self._require_open()
        ctx = self._scalar_context()
        eff_engine = (engine or self.engine or "device").lower()
        params = self.params
        if self.tuned is not None and not self._explicit_params:
            eff_transa = legacy.get("trans", legacy.get("trans_a", transa))
            eff_transb = legacy.get("trans_b", transb)
            rm, rk = (
                (a.shape[1], a.shape[0])
                if str(eff_transa).upper() == "T" else (a.shape[0], a.shape[1])
            )
            rn = (
                b.shape[0] if str(eff_transb).upper() == "T" else b.shape[1]
            )
            params = self.tuned.resolve(
                self.variant, eff_engine, rm, rn, rk,
                spec=self.processor.spec, calibration=self._calibration,
            ).params
        before = ctx.stats()
        out = _dgemm(
            a, b, c,
            alpha=alpha, beta=beta, transa=transa, transb=transb,
            variant=self.variant,
            engine=eff_engine,
            params=params, context=ctx,
            pad=self.pad if pad is None else pad,
            check=self.check if check is None else check,
            tracer=self.tracer,
            plan_cache=self.plan_cache,
            **legacy,
        )
        m, n = out.shape
        eff_transa = legacy.get("trans", legacy.get("trans_a", transa))
        k = a.shape[0] if str(eff_transa).upper() == "T" else a.shape[1]
        pm, pn, pk = (
            params.pad_shape(m, n, k)
            if (self.pad if pad is None else pad)
            else (m, n, k)
        )
        with self._stats_lock:
            self._traffic = self._traffic.plus(ctx.stats().since(before))
            self._calls += 1
            self._flops += 2 * m * n * k
            self._padded_flops += 2 * pm * pn * pk
        return out

    def batch(
        self,
        items,
        *,
        isolate_failures: bool = True,
        parallel: bool = False,
        options: SubmitOptions | None = None,
        blocking: (
            BlockingParams | list[BlockingParams | None] | None
        ) = None,
    ) -> ScheduleResult:
        """Dispatch a batch across the session's CG pool.

        Returns the scheduler's
        :class:`~repro.multi.scheduler.ScheduleResult` (a superset of
        :class:`~repro.core.batch.BatchResult`'s accounting).  By
        default item failures are isolated — inspect ``result.errors``;
        pass ``isolate_failures=False`` for the raise-on-first-failure
        contract of serial :func:`~repro.core.batch.dgemm_batch`.

        ``parallel=True`` runs each CG's queue on its own worker thread
        (see :meth:`CGScheduler.run
        <repro.multi.scheduler.CGScheduler.run>`); outputs and
        accounting are bit-identical to the default serial dispatch.

        ``options=`` (a :class:`~repro.api.SubmitOptions`) applies
        per-batch execution overrides: engine, result checking, and the
        retry budget (``max_retries`` rebinds the session's retry
        policy for this batch only — ``0`` disables retrying).  The
        serving tier coalesces same-option requests so every dispatched
        batch has one uniform ``options``.

        ``blocking=`` passes per-item :class:`BlockingParams` overrides
        down the dispatch path: one instance for the whole batch, or a
        sequence matching the batch length (``None`` entries resolve
        via the tuned table / session default).  Bad overrides fail up
        front with errors naming the item index.
        """
        self._require_open()
        items = list(items)
        opts = options or DEFAULT_SUBMIT_OPTIONS
        retry_policy = None
        if opts.max_retries is not None:
            base = self.scheduler.retry_policy or DEFAULT_RETRY_POLICY
            retry_policy = replace(base, max_retries=opts.max_retries)
        with self._stats_lock:
            batch_no = self._batches
            self._batches += 1
        with self.tracer.span(
            "session.batch", cat="session", items=len(items), batch=batch_no,
        ):
            result = self.scheduler.run(
                items,
                isolate_failures=isolate_failures,
                parallel=parallel,
                engine=opts.engine,
                check=opts.check,
                retry_policy=retry_policy,
                blocking=blocking,
            )
        with self._stats_lock:
            self._items += len(result)
            self._failures += len(result.errors)
            self._flops += result.flops
            self._padded_flops += result.padded_flops
            self._traffic = self._traffic.plus(result.traffic)
        return result

    def submit(
        self,
        request: Request,
        *,
        options: SubmitOptions | None = None,
    ) -> RequestResult:
        """Execute one typed request; never raises on request failure.

        The synchronous half of the typed surface shared with
        :mod:`repro.serve`: takes a
        :class:`~repro.api.GemmRequest`/:class:`~repro.api.ConvRequest`
        /:class:`~repro.api.LuRequest` and returns a structured
        :class:`~repro.api.RequestResult` — value, this request's own
        traffic delta, fault reports from the resilience ladder, and a
        :class:`~repro.api.RequestError` instead of an exception when
        the request is malformed or exhausts its retry budget.
        (Session-level misuse — submitting on a closed session — still
        raises.)

        GEMM and conv requests run as a batch of one through the
        scheduler (conv is lowered via im2col and its output folded
        back to feature maps); LU runs :func:`repro.apps.lu.blocked_lu`
        on the session's warm CG-0 context.  Either way the request's
        traffic is folded into :meth:`stats`, so summing per-request
        deltas over any set of submissions reconciles bit-exactly with
        the session totals.
        """
        self._require_open()
        opts = options or DEFAULT_SUBMIT_OPTIONS
        try:
            request = as_request(request)
            request.validate()
            bin_label = format_bin(request.shape_bin(self.params))
        except (ConfigError, UnsupportedShapeError) as exc:
            return RequestResult(
                error=RequestError(kind=type(exc).__name__, message=str(exc)),
                traffic=ContextStats.zero(),
            )
        if isinstance(request, LuRequest):
            return self._submit_lu(request, bin_label)
        gemm = request.lower() if isinstance(request, ConvRequest) else request
        result = self.batch([gemm], options=opts)
        traffic = result.item_traffic[0]
        if result.errors:
            err = result.errors[0]
            return RequestResult(
                error=RequestError(kind=err.kind, message=err.message),
                traffic=traffic,
                fault_reports=result.fault_reports,
                bin=bin_label,
            )
        value = result.outputs[0]
        if isinstance(request, ConvRequest):
            value = request.fold(value)
        return RequestResult(
            value=value,
            traffic=traffic,
            fault_reports=result.fault_reports,
            bin=bin_label,
        )

    def _submit_lu(self, request: LuRequest, bin_label: str) -> RequestResult:
        """Run one LU factorization on the warm scalar context."""
        from repro.apps.lu import blocked_lu

        ctx = self._scalar_context()
        before = ctx.stats()
        try:
            value = blocked_lu(
                request.a,
                panel=request.panel,
                variant=self.variant,
                params=self.params,
                context=ctx,
                tracer=self.tracer,
            )
        except Exception as exc:
            delta = ctx.stats().since(before)
            with self._stats_lock:
                self._traffic = self._traffic.plus(delta)
                self._failures += 1
            return RequestResult(
                error=RequestError(kind=type(exc).__name__, message=str(exc)),
                traffic=delta,
                bin=bin_label,
            )
        delta = ctx.stats().since(before)
        with self._stats_lock:
            self._traffic = self._traffic.plus(delta)
            self._calls += 1
            self._flops += value.gemm_flops
            self._padded_flops += value.gemm_flops
        return RequestResult(value=value, traffic=delta, bin=bin_label)

    def resil_stats(self) -> dict:
        """Cumulative resilience counters (see
        :meth:`~repro.multi.scheduler.CGScheduler.resil_stats`)."""
        return self.scheduler.resil_stats()

    def metrics_registry(self):
        """This session's counters as one sampler-ready registry.

        The scheduler's registry (per-CG device counters, NoC, plan
        cache, resilience) plus the cumulative session accounting
        under ``session.*`` (``session.traffic.dma_bytes``, ...).
        Attach a :class:`~repro.obs.series.MetricsSampler` to stream
        the whole address space as time series; because
        :meth:`stats` reads are lock-held and registry snapshots
        telescope, summing sampler-window deltas of the
        ``session.traffic.*`` counters over a run reconciles
        bit-exactly with :meth:`stats` ``.traffic``.
        """
        registry = self.scheduler.metrics_registry()
        registry.register("session", lambda: self.stats().as_dict())
        return registry

    def stats(self) -> SessionStats:
        """Cumulative accounting since the session opened."""
        # the scalar context may have moved since the last snapshot
        # (it is long-lived, unlike the scheduler's per-run scopes);
        # fold nothing here — dgemm() folds its own deltas eagerly.
        with self._stats_lock:
            return SessionStats(
                calls=self._calls,
                batches=self._batches,
                items=self._items,
                failures=self._failures,
                flops=self._flops,
                padded_flops=self._padded_flops,
                traffic=self._traffic.snapshot(),
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return (
            f"Session({self.variant}, pool={self.n_core_groups} CGs, "
            f"{state}, calls={self._calls}, batches={self._batches})"
        )
