"""Blocking parameters and their hardware-constraint validation.

The paper's three levels (Sec III-A):

- CG level: ``(bM, bN, bK)`` blocks streamed between main memory and
  the cluster, with ``bX = 8 * pX``;
- thread level: ``(pM, pN, pK)`` tiles per CPE, bounded by the 64 KB
  LDM (and by *two* A/C buffers once double buffering is on);
- register level: ``rM = rN = 4`` fixed by the 32-register budget.

Two named parameter sets from the paper:

- ``BlockingParams.paper_single()`` — ``pM=16, pN=48, pK=96``
  (Sec III-C2, used by the PE and ROW versions);
- ``BlockingParams.paper_double()`` — ``pM=16, pN=32, pK=96``
  (Sec IV-B, used by the DB and SCHED versions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BlockingError
from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.utils.validation import check_multiple, check_positive_int

__all__ = ["BlockingParams"]

#: mesh side (the 8 of the 8x8 cluster); fixed by the architecture.
GRID = 8
#: register tile (Sec III-C3).
R_M = 4
R_N = 4
#: doubles per 128 B DMA transaction.
DMA_GRANULE_DOUBLES = 16


@dataclass(frozen=True)
class BlockingParams:
    """Thread-level tile sizes plus the buffering regime."""

    p_m: int = 16
    p_n: int = 32
    p_k: int = 96
    double_buffered: bool = True

    def __post_init__(self) -> None:
        check_positive_int("p_m", self.p_m)
        check_positive_int("p_n", self.p_n)
        check_positive_int("p_k", self.p_k)
        # DMA granularity: both the A/C row count and the B row count
        # (pK) produce column segments that must be 128 B multiples.
        check_multiple("p_m", self.p_m, DMA_GRANULE_DOUBLES)
        check_multiple("p_k", self.p_k, DMA_GRANULE_DOUBLES)
        # register tile coverage
        check_multiple("p_n", self.p_n, R_N)
        if self.p_m % (R_M * 4) != 0:
            raise BlockingError(
                f"p_m must be a multiple of rM*4 = {R_M * 4} so the "
                f"register tile covers whole columns, got {self.p_m}"
            )

    # -- CG-level sizes ------------------------------------------------

    @property
    def b_m(self) -> int:
        return GRID * self.p_m

    @property
    def b_n(self) -> int:
        return GRID * self.p_n

    @property
    def b_k(self) -> int:
        return GRID * self.p_k

    # -- LDM accounting --------------------------------------------------

    @property
    def ldm_doubles_per_cpe(self) -> int:
        """Doubles of LDM the tile working set occupies on one CPE.

        Double buffering (Algorithm 2) keeps two A and two C tiles in
        flight; B has a single buffer because a ``dB`` block is loaded
        once per (j, l) iteration and stays resident.
        """
        a = self.p_m * self.p_k
        b = self.p_k * self.p_n
        c = self.p_m * self.p_n
        if self.double_buffered:
            return 2 * a + b + 2 * c
        return a + b + c

    def validate(self, spec: SW26010Spec = DEFAULT_SPEC) -> None:
        """Raise :class:`BlockingError` on any hardware violation."""
        budget = spec.ldm_doubles
        need = self.ldm_doubles_per_cpe
        if need >= budget:
            raise BlockingError(
                f"tiles need {need} doubles of LDM per CPE "
                f"({'double' if self.double_buffered else 'single'} buffered), "
                f"budget is {budget}"
            )
        if GRID != spec.mesh_rows or GRID != spec.mesh_cols:
            raise BlockingError(
                f"blocking assumes an {GRID}x{GRID} mesh, spec has "
                f"{spec.mesh_rows}x{spec.mesh_cols}"
            )

    def fits(self, spec: SW26010Spec = DEFAULT_SPEC) -> bool:
        try:
            self.validate(spec)
        except BlockingError:
            return False
        return True

    # -- shape admission ---------------------------------------------------

    def check_shape(self, m: int, n: int, k: int) -> tuple[int, int, int]:
        """Return the CG-block grid (M, N, K) for an admissible shape."""
        from repro.errors import UnsupportedShapeError

        for name, dim, block in (("m", m, self.b_m), ("n", n, self.b_n), ("k", k, self.b_k)):
            if dim <= 0 or dim % block != 0:
                raise UnsupportedShapeError(
                    f"{name}={dim} is not a positive multiple of the CG "
                    f"block factor {block} (paper Sec III); pass pad=True "
                    "to dgemm() to zero-pad"
                )
        return m // self.b_m, n // self.b_n, k // self.b_k

    def pad_shape(self, m: int, n: int, k: int) -> tuple[int, int, int]:
        """Round a GEMM shape up to the CG block factors (``pad=True``).

        This is the shape the device actually executes; batch
        accounting reports both it and the logical shape so padded
        efficiency numbers are never silently conflated.
        """
        def up(dim: int, block: int) -> int:
            return -(-dim // block) * block

        return up(m, self.b_m), up(n, self.b_n), up(k, self.b_k)

    # -- named configurations ---------------------------------------------

    @classmethod
    def paper_single(cls) -> "BlockingParams":
        """Sec III-C2 parameters (PE and ROW versions)."""
        return cls(p_m=16, p_n=48, p_k=96, double_buffered=False)

    @classmethod
    def paper_double(cls) -> "BlockingParams":
        """Sec IV-B parameters (DB and SCHED versions)."""
        return cls(p_m=16, p_n=32, p_k=96, double_buffered=True)

    @classmethod
    def small(cls, double_buffered: bool = True) -> "BlockingParams":
        """A scaled-down set for fast functional tests."""
        return cls(p_m=16, p_n=8, p_k=16, double_buffered=double_buffered)
