"""The closed-form blocking model of Sec III-C.

The section derives, for the CG-level N-K-M loop of Algorithm 1 with B
as the reside matrix:

- traffic: ``2*K*m*n + N*m*k + k*n`` elements, i.e.
  ``m*n*k * (2/bK + 1/bN) + k*n``;
- bandwidth-reduction ratio ``S = 2 / (2/bK + 1/bN + 1/m)``;
- the sustain condition ``F*W/S < Bt`` which at the optimum
  ``bK = 2*bN`` yields ``bN > F*W/Bt`` — 174.7 for the SW26010 numbers,
  hence the paper's ``bK >= 350, bN >= 175``;
- the LDM capacity bound ``pM*pN + pN*pK + pK*pM < 8192`` doubles;
- the register bound ``rM*rN + rM + rN < 32`` with LDM-register
  bandwidth reduction ``2/(1/rM + 1/rN)``, maximised at ``rM = rN = 4``.

Every formula is exposed as a small function so the block-size
experiment (E4) and the ablations (A3) can sweep them.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.utils.units import BYTES_PER_DOUBLE

__all__ = [
    "cg_traffic_elements",
    "bandwidth_reduction",
    "required_bandwidth",
    "min_block_n",
    "ldm_doubles",
    "ldm_fits",
    "register_budget",
    "register_fits",
    "register_bandwidth_reduction",
    "optimal_register_tile",
    "optimal_bk_bn_split",
]


def cg_traffic_elements(m: int, n: int, k: int, b_n: int, b_k: int) -> int:
    """Total elements moved between main memory and LDM (Algorithm 1).

    C is fetched and written K times (2*K*m*n), A fetched N times
    (N*m*k), B fetched once (k*n).
    """
    if min(m, n, k, b_n, b_k) <= 0:
        raise ConfigError("dimensions and block sizes must be positive")
    big_k = -(-k // b_k)
    big_n = -(-n // b_n)
    return 2 * big_k * m * n + big_n * m * k + k * n


def bandwidth_reduction(b_n: float, b_k: float, m: float | None = None) -> float:
    """The ratio S: flops per element moved, times two.

    ``S = 2 / (2/bK + 1/bN + 1/m)``; with ``m`` omitted the asymptotic
    form ``2 / (2/bK + 1/bN)`` is returned.
    """
    if b_n <= 0 or b_k <= 0:
        raise ConfigError("block sizes must be positive")
    denom = 2.0 / b_k + 1.0 / b_n
    if m is not None:
        if m <= 0:
            raise ConfigError("m must be positive")
        denom += 1.0 / m
    return 2.0 / denom


def required_bandwidth(
    s: float, spec: SW26010Spec = DEFAULT_SPEC, word_bytes: int = BYTES_PER_DOUBLE
) -> float:
    """Memory bandwidth (B/s) DGEMM needs to run at peak: ``F*W/S``."""
    if s <= 0:
        raise ConfigError("bandwidth reduction must be positive")
    return spec.peak_flops * word_bytes / s


def min_block_n(
    spec: SW26010Spec = DEFAULT_SPEC, word_bytes: int = BYTES_PER_DOUBLE
) -> float:
    """The lower bound ``bN > F*W/Bt`` at the optimal split ``bK = 2*bN``.

    For F = 742.4 Gflop/s, W = 8 and Bt = 34 GB/s this is 174.7, which
    the paper rounds to the constraints ``bN >= 175`` and ``bK >= 350``.
    """
    return spec.peak_flops * word_bytes / spec.dma.peak_bandwidth


def ldm_doubles(p_m: int, p_n: int, p_k: int) -> int:
    """Doubles of LDM one CPE's (single-buffered) tile set occupies."""
    if min(p_m, p_n, p_k) <= 0:
        raise ConfigError("tile sizes must be positive")
    return p_m * p_n + p_n * p_k + p_k * p_m


def ldm_fits(p_m: int, p_n: int, p_k: int, spec: SW26010Spec = DEFAULT_SPEC) -> bool:
    """The strict Sec III-C2 capacity test ``... < 8192``."""
    return ldm_doubles(p_m, p_n, p_k) < spec.ldm_doubles


def register_budget(r_m: int, r_n: int) -> int:
    """Vector registers a ``rM x rN`` tile consumes: C + A + B."""
    if r_m <= 0 or r_n <= 0:
        raise ConfigError("register tile sides must be positive")
    return r_m * r_n + r_m + r_n


def register_fits(r_m: int, r_n: int, spec: SW26010Spec = DEFAULT_SPEC) -> bool:
    """The strict Sec III-C3 budget test ``rM*rN + rM + rN < 32``."""
    return register_budget(r_m, r_n) < spec.cpe.vector_registers


def register_bandwidth_reduction(r_m: int, r_n: int) -> float:
    """LDM-to-register bandwidth reduction ``2 / (1/rM + 1/rN)``."""
    if r_m <= 0 or r_n <= 0:
        raise ConfigError("register tile sides must be positive")
    return 2.0 / (1.0 / r_m + 1.0 / r_n)


def optimal_register_tile(
    p_m: int = 16, p_n: int = 32, spec: SW26010Spec = DEFAULT_SPEC
) -> tuple[int, int]:
    """Search the register-tile space of Sec III-C3; returns (4, 4).

    Constraints: the budget is strict; ``rM`` vector registers must
    cover whole pM columns (``rM * simd_width`` divides ``pM``) and
    ``rN`` must divide ``pN``.  Ties in bandwidth reduction are broken
    toward the squarer tile, as the paper argues the maximum lies at
    ``rM = rN``.
    """
    simd = spec.cpe.simd_width
    best: tuple[float, float, int, int] | None = None
    for r_m in range(1, spec.cpe.vector_registers):
        if p_m % (r_m * simd) != 0:
            continue
        for r_n in range(1, spec.cpe.vector_registers):
            if p_n % r_n != 0 or not register_fits(r_m, r_n, spec):
                continue
            score = (register_bandwidth_reduction(r_m, r_n), -abs(r_m - r_n), r_m, r_n)
            if best is None or score > best:
                best = score
    if best is None:
        raise ConfigError("no register tile satisfies the constraints")
    return best[2], best[3]


def optimal_bk_bn_split(budget_elements: float) -> tuple[float, float]:
    """Maximise S subject to a fixed LDM budget on ``bK + 2*bN``.

    With resident strips of A (bM x bK) and B/C columns, the capacity
    cost scales like ``bK + 2*bN`` at fixed ``bM``; maximising
    ``S = 2/(2/bK + 1/bN)`` under that budget gives ``bK = 2*bN``
    (the paper's optimum).  Returned as ``(bK, bN)``.
    """
    if budget_elements <= 0:
        raise ConfigError("budget must be positive")
    b_n = budget_elements / 4.0
    return 2.0 * b_n, b_n
