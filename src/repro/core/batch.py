"""Batched DGEMM: many multiplies on one core group.

The application layers (blocked LU, im2col convolution) issue long
sequences of GEMMs; rebuilding a :class:`CoreGroup` per call wastes
setup and discards the cumulative DMA statistics.  ``dgemm_batch``
runs a sequence on a single device inside one
:class:`~repro.core.context.ExecutionContext` and returns results plus
the context's traffic accounting — the interface a host-side library
would expose.

The shared context is what makes the batch the *hot* path: same-shape
items reuse the staging allocations in place (at most one host-side
copy per operand per item), and every staged handle is freed when the
batch scope exits, so the device's byte budget returns to its
pre-batch baseline even when an item raises mid-run.

Every batch is validated **up front** by :func:`validate_items`:
a mis-shaped item is rejected with its index in the message before
anything is staged, instead of surfacing as an opaque device error
mid-batch after earlier items already executed.

Pass ``processor=`` (or ``n_core_groups=``) to dispatch the batch
across the chip's core groups through
:class:`repro.multi.scheduler.CGScheduler` instead of serializing it
on one CG.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

import numpy as np

from repro.errors import ConfigError, UnsupportedShapeError
from repro.api import GemmRequest, resolve_legacy_kwargs
from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.arch.core_group import CoreGroup
from repro.core.api import dgemm
from repro.core.context import ExecutionContext
from repro.core.params import BlockingParams
from repro.core.variants import get_variant

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.multi.processor import SW26010Processor
    from repro.multi.scheduler import ScheduleResult

__all__ = ["BatchItem", "BatchResult", "dgemm_batch", "validate_items"]


class BatchItem(GemmRequest):
    """Deprecated alias of :class:`repro.api.GemmRequest`.

    The typed request surface (PR 7) renamed the batch work unit;
    ``BatchItem`` remains a construction-compatible subclass so old
    call sites keep working, but new code should build
    :class:`~repro.api.GemmRequest` directly.  Every entry point that
    accepted ``BatchItem`` now accepts any ``GemmRequest``.
    """

    def __post_init__(self) -> None:
        warnings.warn(
            "BatchItem is deprecated; construct repro.api.GemmRequest "
            "instead (same fields, same semantics)",
            DeprecationWarning,
            stacklevel=3,
        )
        super().__post_init__()


def validate_items(
    items: Sequence[GemmRequest],
) -> list[tuple[int, int, int]]:
    """Validate every item up front; return the effective (m, n, k) shapes.

    The returned shapes account for ``transa``/``transb``.  Any
    mis-shaped item raises :class:`UnsupportedShapeError` (or
    :class:`ConfigError` for a non-item) naming the item's index, so a
    bad batch fails before a single operand is staged.  Validation
    itself lives on :meth:`repro.api.GemmRequest.validate`; this
    wrapper only contributes the index prefix.
    """
    shapes: list[tuple[int, int, int]] = []
    for idx, item in enumerate(items):
        if not isinstance(item, GemmRequest):
            raise ConfigError(
                f"batch item {idx} is {type(item).__name__}, expected "
                "GemmRequest (or the deprecated BatchItem alias)"
            )
        try:
            shapes.append(item.validate())
        except UnsupportedShapeError as exc:
            raise UnsupportedShapeError(f"batch item {idx}: {exc}") from None
    return shapes


@dataclass(frozen=True)
class BatchResult:
    """Results plus the device's aggregate accounting.

    ``flops`` counts the *logical* (unpadded) work ``2*m*n*k`` per
    item; ``padded_flops`` counts what the device executed after
    ``pad=True`` rounded shapes up to the CG block factors.  Efficiency
    numbers should divide by the one that matches the question being
    asked — conflating them silently inflates (or deflates) rates.
    """

    outputs: tuple[np.ndarray, ...]
    dma_bytes: int
    dma_transactions: int
    regcomm_bytes: int
    flops: int
    padded_flops: int = 0

    @property
    def padding_overhead(self) -> float:
        """``padded_flops / flops`` — 1.0 means no padding waste."""
        return self.padded_flops / self.flops if self.flops else 1.0

    def __len__(self) -> int:
        return len(self.outputs)


def dgemm_batch(
    items: Sequence[GemmRequest] | Iterable[GemmRequest],
    variant: str = "SCHED",
    engine: str = "device",
    params: BlockingParams | None = None,
    spec: SW26010Spec = DEFAULT_SPEC,
    core_group: CoreGroup | None = None,
    pad: bool = True,
    context: ExecutionContext | None = None,
    check: bool = False,
    processor: "SW26010Processor | None" = None,
    n_core_groups: int | None = None,
    tracer=None,
    plan_cache=None,
    **legacy: Any,
) -> "BatchResult | ScheduleResult":
    """Run every item on one shared core group — or across a CG pool.

    ``pad`` defaults to True here (unlike ``dgemm``) because batch
    workloads — LU trailing updates, convolution layers — rarely arrive
    in block-factor multiples.  Pass ``context=`` to keep staging plans
    warm across several batches; otherwise a batch-scoped context is
    created and torn down here.  ``check=`` verifies each item against
    the numpy reference, as in the scalar entry point.  ``engine=``
    selects the execution engine per :func:`repro.core.api.dgemm` —
    ``"vectorized"`` is the throughput choice for long batches
    (identical accounting, same results to rtol=1e-12).

    Passing ``processor=`` (an :class:`SW26010Processor`) or
    ``n_core_groups=`` dispatches the batch across multiple core
    groups through :class:`repro.multi.scheduler.CGScheduler` and
    returns its :class:`~repro.multi.scheduler.ScheduleResult` (a
    superset of :class:`BatchResult`'s accounting).  Any item failure
    propagates on this path, matching the serial contract.

    ``tracer=`` records per-item ``dgemm`` phase spans (and, on the
    pool path, the scheduler's ``cg_dispatch`` spans) into a
    :class:`repro.obs.SpanTracer`; ``None`` disables tracing.

    ``plan_cache=`` supplies compiled index plans to plan-aware engines
    (see :func:`repro.core.api.dgemm`); a batch full of repeated shapes
    builds each plan once.  On the pool path the scheduler owns its own
    cache.
    """
    if legacy:
        resolved = resolve_legacy_kwargs("dgemm_batch", legacy)
        unexpected = set(resolved) - {"n_core_groups"}
        if unexpected:
            raise TypeError(
                "dgemm_batch() got an unexpected keyword argument "
                f"{sorted(unexpected)[0]!r}"
            )
        if "n_core_groups" in resolved:
            if n_core_groups is not None:
                raise ConfigError(
                    "dgemm_batch(): n_core_groups given both directly and "
                    "through a legacy spelling"
                )
            n_core_groups = resolved["n_core_groups"]
    items = list(items)
    if not items:
        raise ConfigError("empty batch")
    if processor is not None or n_core_groups is not None:
        if core_group is not None or context is not None:
            raise ConfigError(
                "processor=/n_core_groups= dispatches across core groups; "
                "core_group=/context= apply only to the single-CG path — "
                "pass one or the other"
            )
        from repro.multi.scheduler import CGScheduler

        scheduler = CGScheduler(
            processor,
            n_core_groups=n_core_groups,
            variant=variant,
            engine=engine,
            params=params,
            spec=spec,
            pad=pad,
            check=check,
            tracer=tracer,
        )
        return scheduler.run(items, isolate_failures=False)
    shapes = validate_items(items)
    params = params or get_variant(variant).default_params()
    outputs: list[np.ndarray] = []
    flops = 0
    padded_flops = 0
    with ExecutionContext.scoped(context, core_group, spec) as ctx:
        start = ctx.stats()
        for item, (m, n, k) in zip(items, shapes):
            out = dgemm(
                item.a, item.b, item.c,
                alpha=item.alpha, beta=item.beta,
                transa=item.transa, transb=item.transb,
                variant=variant, engine=engine, params=params,
                context=ctx, pad=pad, check=check, tracer=tracer,
                plan_cache=plan_cache,
            )
            flops += 2 * m * n * k
            pm, pn, pk = params.pad_shape(m, n, k) if pad else (m, n, k)
            padded_flops += 2 * pm * pn * pk
            outputs.append(out)
        delta = ctx.stats().since(start)
    return BatchResult(
        outputs=tuple(outputs),
        dma_bytes=delta.dma_bytes,
        dma_transactions=delta.dma_transactions,
        regcomm_bytes=delta.regcomm_bytes,
        flops=flops,
        padded_flops=padded_flops,
    )
