"""Batched DGEMM: many multiplies on one core group.

The application layers (blocked LU, im2col convolution) issue long
sequences of GEMMs; rebuilding a :class:`CoreGroup` per call wastes
setup and discards the cumulative DMA statistics.  ``dgemm_batch``
runs a sequence on a single device and returns results plus the
aggregate traffic accounting — the interface a host-side library would
expose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.arch.core_group import CoreGroup
from repro.core.api import dgemm
from repro.core.params import BlockingParams

__all__ = ["BatchItem", "BatchResult", "dgemm_batch"]


@dataclass(frozen=True)
class BatchItem:
    """One multiply in a batch (C may be None when beta == 0)."""

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray | None = None
    alpha: float = 1.0
    beta: float = 0.0


@dataclass(frozen=True)
class BatchResult:
    """Results plus the device's aggregate accounting."""

    outputs: tuple[np.ndarray, ...]
    dma_bytes: int
    dma_transactions: int
    regcomm_bytes: int
    flops: int

    def __len__(self) -> int:
        return len(self.outputs)


def dgemm_batch(
    items: Sequence[BatchItem] | Iterable[BatchItem],
    variant: str = "SCHED",
    params: BlockingParams | None = None,
    spec: SW26010Spec = DEFAULT_SPEC,
    core_group: CoreGroup | None = None,
    pad: bool = True,
) -> BatchResult:
    """Run every item on one shared core group.

    ``pad`` defaults to True here (unlike ``dgemm``) because batch
    workloads — LU trailing updates, convolution layers — rarely arrive
    in block-factor multiples.
    """
    items = list(items)
    if not items:
        raise ConfigError("empty batch")
    cg = core_group or CoreGroup(spec)
    # snapshot so a shared device's prior traffic is not attributed to
    # this batch
    dma_bytes0 = cg.dma.stats.bytes_total
    dma_tx0 = cg.dma.stats.transactions
    regcomm0 = cg.regcomm.stats.bytes_moved
    outputs = []
    flops = 0
    for idx, item in enumerate(items):
        if not isinstance(item, BatchItem):
            raise ConfigError(
                f"batch item {idx} is {type(item).__name__}, expected BatchItem"
            )
        out = dgemm(
            item.a, item.b, item.c,
            alpha=item.alpha, beta=item.beta,
            variant=variant, params=params, core_group=cg, pad=pad,
        )
        m, k = item.a.shape
        flops += 2 * m * item.b.shape[1] * k
        outputs.append(out)
    return BatchResult(
        outputs=tuple(outputs),
        dma_bytes=cg.dma.stats.bytes_total - dma_bytes0,
        dma_transactions=cg.dma.stats.transactions - dma_tx0,
        regcomm_bytes=cg.regcomm.stats.bytes_moved - regcomm0,
        flops=flops,
    )
