"""Batched DGEMM: many multiplies on one core group.

The application layers (blocked LU, im2col convolution) issue long
sequences of GEMMs; rebuilding a :class:`CoreGroup` per call wastes
setup and discards the cumulative DMA statistics.  ``dgemm_batch``
runs a sequence on a single device inside one
:class:`~repro.core.context.ExecutionContext` and returns results plus
the context's traffic accounting — the interface a host-side library
would expose.

The shared context is what makes the batch the *hot* path: same-shape
items reuse the staging allocations in place (at most one host-side
copy per operand per item), and every staged handle is freed when the
batch scope exits, so the device's byte budget returns to its
pre-batch baseline even when an item raises mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.arch.core_group import CoreGroup
from repro.core.api import dgemm
from repro.core.context import ExecutionContext
from repro.core.params import BlockingParams
from repro.core.variants import get_variant

__all__ = ["BatchItem", "BatchResult", "dgemm_batch"]


@dataclass(frozen=True)
class BatchItem:
    """One multiply in a batch (C may be None when beta == 0)."""

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray | None = None
    alpha: float = 1.0
    beta: float = 0.0


@dataclass(frozen=True)
class BatchResult:
    """Results plus the device's aggregate accounting.

    ``flops`` counts the *logical* (unpadded) work ``2*m*n*k`` per
    item; ``padded_flops`` counts what the device executed after
    ``pad=True`` rounded shapes up to the CG block factors.  Efficiency
    numbers should divide by the one that matches the question being
    asked — conflating them silently inflates (or deflates) rates.
    """

    outputs: tuple[np.ndarray, ...]
    dma_bytes: int
    dma_transactions: int
    regcomm_bytes: int
    flops: int
    padded_flops: int = 0

    @property
    def padding_overhead(self) -> float:
        """``padded_flops / flops`` — 1.0 means no padding waste."""
        return self.padded_flops / self.flops if self.flops else 1.0

    def __len__(self) -> int:
        return len(self.outputs)


def dgemm_batch(
    items: Sequence[BatchItem] | Iterable[BatchItem],
    variant: str = "SCHED",
    params: BlockingParams | None = None,
    spec: SW26010Spec = DEFAULT_SPEC,
    core_group: CoreGroup | None = None,
    pad: bool = True,
    context: ExecutionContext | None = None,
) -> BatchResult:
    """Run every item on one shared core group.

    ``pad`` defaults to True here (unlike ``dgemm``) because batch
    workloads — LU trailing updates, convolution layers — rarely arrive
    in block-factor multiples.  Pass ``context=`` to keep staging plans
    warm across several batches; otherwise a batch-scoped context is
    created and torn down here.
    """
    items = list(items)
    if not items:
        raise ConfigError("empty batch")
    params = params or get_variant(variant).default_params()
    outputs: list[np.ndarray] = []
    flops = 0
    padded_flops = 0
    with ExecutionContext.scoped(context, core_group, spec) as ctx:
        start = ctx.stats()
        for idx, item in enumerate(items):
            if not isinstance(item, BatchItem):
                raise ConfigError(
                    f"batch item {idx} is {type(item).__name__}, expected BatchItem"
                )
            out = dgemm(
                item.a, item.b, item.c,
                alpha=item.alpha, beta=item.beta,
                variant=variant, params=params, context=ctx, pad=pad,
            )
            m, k = item.a.shape
            n = item.b.shape[1]
            flops += 2 * m * n * k
            pm, pn, pk = params.pad_shape(m, n, k) if pad else (m, n, k)
            padded_flops += 2 * pm * pn * pk
            outputs.append(out)
        delta = ctx.stats().since(start)
    return BatchResult(
        outputs=tuple(outputs),
        dma_bytes=delta.dma_bytes,
        dma_transactions=delta.dma_transactions,
        regcomm_bytes=delta.regcomm_bytes,
        flops=flops,
        padded_flops=padded_flops,
    )
