"""Verification battery: run every variant against the reference.

A library-quality convenience: sweep variants x shapes x scalar
combinations on the device model and report the worst deviation, so a
port or a modification can be validated with one call.  Used by the
test suite and by ``examples/variant_showdown.py``-style checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.core.api import dgemm
from repro.core.params import BlockingParams
from repro.core.reference import reference_dgemm
from repro.core.variants import VARIANTS
from repro.workloads.matrices import gemm_operands

__all__ = ["VerificationCase", "VerificationReport", "verify_variants"]


@dataclass(frozen=True)
class VerificationCase:
    """One executed comparison."""

    variant: str
    m: int
    n: int
    k: int
    alpha: float
    beta: float
    max_abs_error: float
    passed: bool


@dataclass(frozen=True)
class VerificationReport:
    cases: tuple[VerificationCase, ...]

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.cases)

    @property
    def worst(self) -> VerificationCase:
        return max(self.cases, key=lambda c: c.max_abs_error)

    def failures(self) -> list[VerificationCase]:
        return [c for c in self.cases if not c.passed]


def verify_variants(
    variants: tuple[str, ...] = ("RAW", "PE", "ROW", "DB", "SCHED"),
    grids: tuple[tuple[int, int, int], ...] = ((1, 1, 1), (2, 1, 2)),
    scalars: tuple[tuple[float, float], ...] = ((1.0, 0.0), (-1.5, 0.5)),
    atol: float = 1e-9,
    seed: int = 0,
    spec: SW26010Spec = DEFAULT_SPEC,
) -> VerificationReport:
    """Run the battery; shapes are ``grid * block factors`` per variant.

    ``atol`` is the acceptance threshold on max absolute error against
    the numpy reference (operands are O(1) random normals, so absolute
    and relative scales coincide).
    """
    single = BlockingParams.small(double_buffered=False)
    double = BlockingParams.small(double_buffered=True)
    cases: list[VerificationCase] = []
    for variant in variants:
        traits = VARIANTS[variant.upper()].traits
        params = double if traits.double_buffered else single
        for gm, gn, gk in grids:
            m, n, k = gm * params.b_m, gn * params.b_n, gk * params.b_k
            for alpha, beta in scalars:
                a, b, c = gemm_operands(m, n, k, seed=seed)
                seed += 3
                got = dgemm(
                    a, b, c, alpha=alpha, beta=beta, variant=variant,
                    params=None if variant.upper() == "RAW" else params,
                    spec=spec,
                )
                expected = reference_dgemm(alpha, a, b, beta, c)
                err = float(np.max(np.abs(got - expected)))
                cases.append(
                    VerificationCase(
                        variant=variant.upper(), m=m, n=n, k=k,
                        alpha=alpha, beta=beta,
                        max_abs_error=err, passed=err <= atol,
                    )
                )
    return VerificationReport(cases=tuple(cases))
