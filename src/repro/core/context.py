"""Scoped staging of DGEMM operands in core-group main memory.

The paper's host-side contract (Sec II/IV) is that the MPE stages
operands into the CG's main memory, the CPE cluster streams blocks via
DMA, and the result is read back.  :class:`ExecutionContext` is that
contract as a first-class object with a safe lifecycle:

- **unique handle names** — every context draws a process-unique
  namespace, so calls sharing one :class:`CoreGroup` can never clobber
  each other's staged operands; genuine name collisions raise
  :class:`~repro.errors.ConfigError` instead of silently overwriting;
- **guaranteed free-on-exit** — staged handles are released when the
  context closes (``with`` block or :meth:`close`), even when a variant
  raises mid-run, so ``MainMemory.used_bytes`` always returns to its
  pre-call baseline;
- **staging-plan cache** — plans are keyed on ``(slot, rows, cols)``
  (dtype and order are fixed by the model: f64, column-major; the
  blocking parameters enter through the padded target shape), so a
  batch of same-shape multiplies rewrites resident allocations in
  place instead of reallocating and copying per item;
- **per-context stat deltas** — DMA, register-communication and
  staging counters are exposed relative to the context's baseline, so
  batch accounting needs no manual snapshot bookkeeping.
"""

from __future__ import annotations

import contextlib
from collections import OrderedDict
from dataclasses import dataclass
from itertools import count

import numpy as np

from repro.errors import ConfigError
from repro.arch.config import SW26010Spec, DEFAULT_SPEC
from repro.arch.core_group import CoreGroup
from repro.arch.memory import MatrixHandle
from repro.utils.stats import StatsProtocol

__all__ = ["ContextStats", "ExecutionContext"]

#: process-wide source of unique context namespaces.
_CONTEXT_IDS = count(1)


@dataclass(frozen=True)
class ContextStats(StatsProtocol):
    """Traffic and staging counters attributed to one context.

    ``delta``/``plus``/``zero``/``as_dict`` come from
    :class:`~repro.utils.stats.StatsProtocol`; :meth:`since` is the
    delta spelled in baseline terms, kept because "traffic since that
    snapshot" is how every caller reads.
    """

    #: bytes moved by DMA between main memory and LDM.
    dma_bytes: int
    dma_transactions: int
    #: bytes moved over the register-communication mesh.
    regcomm_bytes: int
    #: operands staged through this context.
    staged: int
    #: stagings served by the plan cache (in-place rewrite, no copy churn).
    plan_hits: int
    #: new main-memory allocations (one full host copy each).
    allocations: int

    def since(self, earlier: "ContextStats") -> "ContextStats":
        """Counter deltas relative to an earlier snapshot."""
        return self.delta(earlier)


class ExecutionContext:
    """A scope that owns every operand it stages on a core group.

    Use as a context manager around a sequence of calls that should
    share staging plans (the batched hot path), or let
    :func:`repro.core.api.dgemm` create a throwaway one per call::

        with ExecutionContext(cg) as ctx:
            for item in items:
                dgemm(item.a, item.b, context=ctx, pad=True)
        # every staged handle is freed here, raise or no raise

    The plan cache holds at most ``cache_capacity`` resident staging
    allocations (least-recently-used eviction), which bounds the
    context's footprint when shapes keep changing, as in a shrinking LU
    trailing sequence.
    """

    def __init__(
        self,
        core_group: CoreGroup | None = None,
        *,
        spec: SW26010Spec = DEFAULT_SPEC,
        namespace: str | None = None,
        cache_capacity: int = 6,
    ) -> None:
        if cache_capacity < 1:
            raise ConfigError(f"cache_capacity must be >= 1, got {cache_capacity}")
        self.core_group = core_group or CoreGroup(spec)
        self.namespace = namespace or f"ctx{next(_CONTEXT_IDS)}"
        self.cache_capacity = cache_capacity
        #: (slot, rows, cols) -> resident handle name, LRU order.
        self._plans: OrderedDict[tuple[str, int, int], str] = OrderedDict()
        self._entered = False
        self._busy = False
        self._staged = 0
        self._plan_hits = 0
        self._allocations = 0
        self._mark_baselines()

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "ExecutionContext":
        if self._entered:
            raise ConfigError(
                f"ExecutionContext {self.namespace!r} is not reentrant"
            )
        self._entered = True
        self._mark_baselines()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._entered = False
        self.close()
        return False

    def close(self) -> None:
        """Free every handle this context staged (idempotent)."""
        memory = self.core_group.memory
        while self._plans:
            _, name = self._plans.popitem(last=False)
            try:
                memory.free(name)
            except KeyError:
                pass  # already released externally

    @classmethod
    @contextlib.contextmanager
    def scoped(
        cls,
        context: "ExecutionContext | None" = None,
        core_group: CoreGroup | None = None,
        spec: SW26010Spec = DEFAULT_SPEC,
    ):
        """Yield ``context`` unchanged, or a fresh context closed on exit.

        This is the shared entry idiom of ``dgemm`` and the application
        layers: an externally supplied context keeps its staging plans
        alive across calls; an internally created one is a per-call
        scope that frees its operands no matter how the body exits.
        """
        if context is not None:
            if core_group is not None and context.core_group is not core_group:
                raise ConfigError(
                    "core_group differs from context.core_group — pass one "
                    "or the other, not two different devices"
                )
            yield context
            return
        with cls(core_group, spec=spec) as ctx:
            yield ctx

    @contextlib.contextmanager
    def executing(self):
        """Guard one device call; rejects interleaved use of a context.

        Two in-flight calls sharing a context would race on its staging
        slots, which is exactly the silent-clobber bug fixed by
        per-context namespaces — so it raises loudly instead.
        """
        if self._busy:
            raise ConfigError(
                f"ExecutionContext {self.namespace!r} is already executing a "
                "call; interleaved calls must use separate contexts"
            )
        self._busy = True
        try:
            yield self
        finally:
            self._busy = False

    # -- staging -------------------------------------------------------

    def stage(
        self,
        slot: str,
        array: np.ndarray,
        rows: int | None = None,
        cols: int | None = None,
    ) -> MatrixHandle:
        """Stage ``array`` under this context's ``slot`` (e.g. ``"A"``).

        ``rows``/``cols`` grow the target region with zero padding.  A
        same-``(slot, shape)`` restage rewrites the resident allocation
        in place — at most one host-side copy per operand either way.
        """
        array = np.asarray(array)
        if array.ndim != 2:
            raise ConfigError(f"expected a 2-D matrix, got ndim={array.ndim}")
        r, c = array.shape
        t_rows = r if rows is None else int(rows)
        t_cols = c if cols is None else int(cols)
        return self._stage(slot, array, t_rows, t_cols)

    def stage_zeros(self, slot: str, rows: int, cols: int) -> MatrixHandle:
        """Stage a zeroed ``rows x cols`` matrix (no host copy at all)."""
        return self._stage(slot, None, rows, cols)

    def _stage(
        self, slot: str, array: np.ndarray | None, rows: int, cols: int
    ) -> MatrixHandle:
        if not self._entered:
            raise ConfigError(
                f"ExecutionContext {self.namespace!r} is not open — stage "
                "inside its 'with' block so every staged operand is "
                "guaranteed to be freed"
            )
        memory = self.core_group.memory
        key = (str(slot), rows, cols)
        name = self._plans.get(key)
        if name is None:
            name = f"{self.namespace}.{slot}[{rows}x{cols}]"
            if any(h.name == name for h in memory.handles()):
                raise ConfigError(
                    f"staging name {name!r} already exists in this core "
                    "group's main memory — another owner holds it; stage "
                    "through a context with a distinct namespace"
                )
        else:
            self._plans.move_to_end(key)
            self._plan_hits += 1
        allocations_before = memory.stats.allocations
        handle = memory.store(name, array, rows=rows, cols=cols)
        self._staged += 1
        self._allocations += memory.stats.allocations - allocations_before
        if key not in self._plans:
            self._plans[key] = name
            while len(self._plans) > self.cache_capacity:
                _, victim = self._plans.popitem(last=False)
                try:
                    memory.free(victim)
                except KeyError:
                    pass
        return handle

    def read(self, handle: MatrixHandle | str) -> np.ndarray:
        """Defensive copy of a staged matrix (result read-back)."""
        return self.core_group.memory.read(handle)

    # -- accounting ----------------------------------------------------

    def _mark_baselines(self) -> None:
        cg = self.core_group
        self._bytes0 = cg.memory.used_bytes
        self._dma_bytes0 = cg.dma.stats.bytes_total
        self._dma_tx0 = cg.dma.stats.transactions
        self._regcomm0 = cg.regcomm.stats.bytes_moved

    @property
    def baseline_bytes(self) -> int:
        """``MainMemory.used_bytes`` when this context (re)opened.

        The memory-budget invariant: after the context closes,
        ``used_bytes`` is back at this value.
        """
        return self._bytes0

    @property
    def staged_names(self) -> tuple[str, ...]:
        """Handle names currently held by the plan cache."""
        return tuple(self._plans.values())

    @property
    def dma_bytes(self) -> int:
        return self.core_group.dma.stats.bytes_total - self._dma_bytes0

    @property
    def dma_transactions(self) -> int:
        return self.core_group.dma.stats.transactions - self._dma_tx0

    @property
    def regcomm_bytes(self) -> int:
        return self.core_group.regcomm.stats.bytes_moved - self._regcomm0

    def stats(self) -> ContextStats:
        """All per-context deltas in one frozen record."""
        return ContextStats(
            dma_bytes=self.dma_bytes,
            dma_transactions=self.dma_transactions,
            regcomm_bytes=self.regcomm_bytes,
            staged=self._staged,
            plan_hits=self._plan_hits,
            allocations=self._allocations,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExecutionContext({self.namespace!r}, plans={len(self._plans)}, "
            f"staged={self._staged}, hits={self._plan_hits})"
        )
