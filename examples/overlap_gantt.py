#!/usr/bin/env python3
"""Seeing double buffering: ASCII Gantt of Algorithm 2's timeline.

Replays the ROW (single-buffered) and SCHED (double-buffered) loop
structures on the discrete-event engine and renders their DMA/compute
lanes: serial alternation for ROW, transfers nested under compute for
SCHED — the picture behind Figure 6's DB and SCHED gains.

Run:  python examples/overlap_gantt.py
"""

from repro.core.params import BlockingParams
from repro.perf.bottleneck import analyze
from repro.perf.gantt import render_gantt
from repro.perf.timeline import TimelineSimulator

sim = TimelineSimulator()
m, n, k = 768, 768, 1536  # small grid so individual blocks are visible

for variant, params in [
    ("ROW", BlockingParams.paper_single()),
    ("DB", BlockingParams.paper_double()),
    ("SCHED", BlockingParams.paper_double()),
]:
    result = sim.run(variant, m, n, k, params=params)
    hidden = (
        result.overlap_seconds / result.tracer.busy("dma")
        if result.tracer.busy("dma") > 0 else 0.0
    )
    print(f"=== {variant}: {result.gflops:.1f} Gflop/s, "
          f"{100 * hidden:.0f}% of DMA hidden under compute ===")
    print(render_gantt(result.tracer, width=100))
    print()

print("bottleneck analysis at the paper's saturated size (9216^3):")
for variant in ("RAW", "PE", "ROW", "DB", "SCHED"):
    report = analyze(variant, 9216, 9216, 9216)
    print(f"  {variant:6s} bound by {report.binding.value:8s} "
          f"(secondary resource {100 * report.secondary_utilization:.0f}% busy, "
          f"bandwidth headroom {report.headroom})")
