#!/usr/bin/env python3
"""A guided tour of the simulated SW26010 devices.

Walks through the hardware features the paper's DGEMM is built on, at
the device-API level: the LDM budget, the two DMA modes (with the
Figure 5 interleaved distribution made visible), register
communication, and the dual-issue pipeline running Algorithm 3.

Run:  python examples/device_tour.py
"""

import numpy as np

from repro import CoreGroup
from repro.arch.dma import row_mode_owner_rows
from repro.errors import LDMAllocationError, RegisterCommError
from repro.isa.kernels import scheduled_iteration, scheduled_pipeline
from repro.isa.profile import profile_kernel

cg = CoreGroup()
print(cg)

# --- 1. the 64 KB LDM is a hard budget --------------------------------
print("\n[1] LDM: the paper's double-buffered tiles fit, pN = 48 would not")
cpe = cg.cpe((0, 0))
for name, shape in [("A0", (16, 96)), ("A1", (16, 96)), ("C0", (16, 32)),
                    ("C1", (16, 32)), ("B", (96, 32))]:
    cpe.ldm.alloc(name, shape)
print(f"    allocated {cpe.ldm.used_bytes} B of {cpe.ldm.capacity_bytes} B")
try:
    cpe.ldm.alloc("too_much", (96, 16))
except LDMAllocationError as exc:
    print(f"    overflow correctly rejected: {exc}")

# --- 2. DMA modes and the Figure 5 interleave ----------------------------
print("\n[2] ROW_MODE hands CPE j the rows congruent to {2j, 2j+1} mod 16")
matrix = np.arange(128 * 4, dtype=float).reshape(128, 4, order="F")
handle = cg.memory.store("tour", matrix)
for c in cg.cpes():
    if "strip" not in c.ldm:
        c.ldm.alloc("strip", (16, 4))
cg.dma.row_get(handle, 0, 0, 128, 4, cg.row_ldm_buffers(0, "strip"))
for j in (0, 1, 7):
    rows = row_mode_owner_rows(128, j)[:4]
    got = cg.cpe((0, j)).ldm.get("strip").data[:4, 0]
    print(f"    CPE(0,{j}) first rows {list(rows)} -> values {got.astype(int).tolist()}")

# --- 3. register communication -------------------------------------------
print("\n[3] register communication: row broadcast reaches the 7 peers")
payload = np.full(4, 3.14)
cg.regcomm.row_broadcast((2, 5), payload)
received = [cg.regcomm.receive_row((2, j)).data[0] for j in range(8) if j != 5]
print(f"    7 receivers got {set(received)} (one 256-bit item each)")
try:
    cg.regcomm.receive_row((0, 0))
except RegisterCommError:
    print("    receive on an empty buffer is rejected (would deadlock silicon)")

# --- 4. the dual-issue pipeline on Algorithm 3 -----------------------------
print("\n[4] Algorithm 3 on the dual-issue pipeline model")
pipe = scheduled_pipeline()
steady = pipe.steady_state_cycles(scheduled_iteration())
prof = profile_kernel(scheduled=True)
print(f"    steady state: {steady:.0f} cycles per 16-vmad iteration "
      "(one FMA issued every cycle)")
print(f"    full strip multiplication: {prof.strip_cycles} cycles, "
      f"vmad occupancy {100 * prof.vmad_occupancy:.1f}% "
      "(paper: 101,858 cycles, 97%)")
