#!/usr/bin/env python3
"""DGEMM across all four core groups of the SW26010.

The paper optimizes one CG (742.4 Gflop/s peak); the chip has four on a
NoC (Figure 1), and HPL drives them all.  This example runs the
block-column-parallel decomposition functionally (C and B split by
columns, A broadcast over the NoC) and shows the modelled whole-chip
scaling, including its sensitivity to the assumed NoC bandwidth.

Run:  python examples/full_chip_dgemm.py
"""

import numpy as np

from repro import BlockingParams
from repro.apps import blocked_lu  # noqa: F401  (just to show the import path)
from repro.experiments import multi_cg_scaling
from repro.multi import SW26010Processor, dgemm_multi_cg, estimate_multi_cg
from repro.workloads.matrices import gemm_operands

params = BlockingParams.small(double_buffered=True)
m, n, k = params.b_m, 4 * params.b_n, params.b_k

print(f"functional 4-CG DGEMM: {m} x {n} x {k} "
      f"(each CG owns an n/4 = {n // 4} column panel)")
proc = SW26010Processor()
a, b, c = gemm_operands(m, n, k, seed=3)
out = dgemm_multi_cg(a, b, c, alpha=1.0, beta=1.0, params=params, processor=proc)
assert np.allclose(out, a @ b + c, rtol=1e-12, atol=1e-9)
print(f"result exact; NoC broadcast of A: {proc.noc.stats.messages} messages, "
      f"{proc.noc.stats.bytes_moved / 1e3:.0f} KB")
for g, cg in enumerate(proc.core_groups):
    print(f"  CG{g}: {cg.dma.stats.bytes_total / 1e6:.2f} MB DMA")

print("\nmodelled whole-chip scaling (paper kernel per CG):")
print(multi_cg_scaling.render())

est = estimate_multi_cg(15360, 15360, 15360)
print(f"\nat 15360^3 the chip sustains {est.gflops:.0f} Gflop/s of the "
      f"{4 * 742.4:.0f} Gflop/s 4-CG peak "
      f"({est.speedup_vs_single_cg:.2f}x one CG)")
