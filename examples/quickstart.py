#!/usr/bin/env python3
"""Quickstart: run DGEMM on the simulated SW26010 core group.

Computes C = alpha*A*B + beta*C with the paper's best (SCHED) variant,
verifies the result against numpy, and shows what the device did: bytes
over the DMA channel, register-communication traffic, and the modelled
performance at paper scale.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import BlockingParams, CoreGroup, Estimator, dgemm, reference_dgemm

# Scaled-down blocking so the functional simulation finishes in
# seconds; the paper's real parameters are BlockingParams.paper_double()
# = (pM, pN, pK) = (16, 32, 96) with CG blocks (128, 256, 768).
params = BlockingParams.small(double_buffered=True)
m, n, k = 2 * params.b_m, params.b_n, params.b_k
print(f"DGEMM {m} x {n} x {k} on a simulated SW26010 core group")
print(f"blocking: thread tiles {params.p_m}x{params.p_n}x{params.p_k}, "
      f"CG blocks {params.b_m}x{params.b_n}x{params.b_k}, double buffered")

rng = np.random.default_rng(42)
a = rng.standard_normal((m, k))
b = rng.standard_normal((k, n))
c = rng.standard_normal((m, n))

cg = CoreGroup()  # 64 CPEs, 64 KB LDM each, 8x8 mesh, DMA, regcomm
result = dgemm(a, b, c, alpha=2.0, beta=-1.0, variant="SCHED",
               params=params, core_group=cg)

expected = reference_dgemm(2.0, a, b, -1.0, c)
err = np.max(np.abs(result - expected))
print(f"\nmax |simulated - numpy| = {err:.3e}")
assert np.allclose(result, expected, rtol=1e-12, atol=1e-9)

stats = cg.dma.stats
print(f"\nDMA:    {stats.bytes_total / 1e6:.2f} MB moved "
      f"({stats.gets} gets, {stats.puts} puts, {stats.transactions} "
      f"transactions of 128 B)")
print(f"        by mode: { {k: f'{v/1e6:.2f} MB' for k, v in stats.by_mode.items()} }")
rc = cg.regcomm.stats
print(f"regcomm: {rc.bytes_moved / 1e6:.2f} MB broadcast "
      f"({rc.row_broadcasts} row + {rc.col_broadcasts} column broadcasts)")

# What would this run at on real silicon? Ask the performance model at
# the paper's saturated size.
estimate = Estimator().estimate("SCHED", 9216, 9216, 9216)
print(f"\nmodelled SCHED @ 9216^3: {estimate.gflops:.1f} Gflop/s "
      f"({100 * estimate.efficiency():.1f}% of the 742.4 Gflop/s peak; "
      "paper: 699.7)")
