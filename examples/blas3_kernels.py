#!/usr/bin/env python3
"""Beyond DGEMM: the conclusion's "other dense matrix kernels".

The paper closes by hoping the methodology extends to other dense
kernels.  This example runs the two extensions built on the DGEMM core
— DTRSM (blocked triangular solve) and DSYRK (symmetric rank-k update)
— plus the batched interface that real consumers (LU, conv layers) use,
all on one shared simulated core group.

Run:  python examples/blas3_kernels.py
"""

import numpy as np

from repro import BlockingParams, CoreGroup
from repro.apps import dsyrk_ln, dtrsm_llnu
from repro.api import GemmRequest
from repro.core.batch import dgemm_batch

params = BlockingParams.small(double_buffered=True)
cg = CoreGroup()
rng = np.random.default_rng(21)

# --- DTRSM: L X = B with unit-lower L ---------------------------------
n, nrhs = 96, 32
l_matrix = np.tril(rng.standard_normal((n, n)) / np.sqrt(n), -1) + np.eye(n)
b = rng.standard_normal((n, nrhs))
x = dtrsm_llnu(l_matrix, b, block=32, params=params, core_group=cg)
err = np.max(np.abs(l_matrix @ x - b))
print(f"DTRSM  {n}x{n} L, {nrhs} right-hand sides: max |LX - B| = {err:.2e}")
assert err < 1e-9

# --- DSYRK: C = alpha*A*A^T + beta*C (lower) ------------------------------
a = rng.standard_normal((64, 48))
c = rng.standard_normal((64, 64))
out = dsyrk_ln(a, c, alpha=2.0, beta=0.5, block=32, params=params, core_group=cg)
expected = np.tril(2.0 * a @ a.T + 0.5 * c)
err = np.max(np.abs(out - expected))
print(f"DSYRK  64x48 rank-k update: max error = {err:.2e} "
      "(lower triangle, upper zeroed)")
assert err < 1e-9

# --- batched GEMM: a convolution-layer-like sequence ---------------------
items = [
    GemmRequest(rng.standard_normal((64, 27)), rng.standard_normal((27, 196)))
    for _ in range(4)
]
result = dgemm_batch(items, params=params, core_group=cg)
for item, output in zip(items, result.outputs):
    assert np.allclose(output, item.a @ item.b, rtol=1e-10, atol=1e-9)
print(f"batch  {len(result)} GEMMs: {result.flops / 1e6:.1f} Mflops, "
      f"{result.dma_bytes / 1e6:.1f} MB DMA on the shared device")

print(f"\ncumulative device traffic this session: "
      f"{cg.dma.stats.bytes_total / 1e6:.1f} MB over "
      f"{cg.dma.stats.transactions} transactions")
