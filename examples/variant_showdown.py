#!/usr/bin/env python3
"""All five DGEMM versions, functionally and at paper scale.

Runs RAW / PE / ROW / DB / SCHED on the device model (same operands,
identical results required) and then asks the performance model for
each version's Gflop/s at the paper's largest size — Figure 6's
right-hand column, with the paper's numbers alongside.

Run:  python examples/variant_showdown.py
"""

import numpy as np

from repro import BlockingParams, CoreGroup, Estimator, reference_dgemm
from repro.core.api import dgemm
from repro.utils.format import Table
from repro.workloads.matrices import gemm_operands

PAPER = {"RAW": 157.9, "PE": 224.7, "ROW": 262.0, "DB": 330.1, "SCHED": 706.1}

single = BlockingParams.small(double_buffered=False)
double = BlockingParams.small(double_buffered=True)
m, n, k = 256, 192, 384  # common multiple of both block sets
a, b, c = gemm_operands(m, n, k, seed=99)
expected = reference_dgemm(1.0, a, b, 1.0, c)

estimator = Estimator()
table = Table(
    ["variant", "functional max err", "DMA MB", "modelled Gflop/s @15360^3", "paper"],
    title="the five versions of Section V",
)
for name in ("RAW", "PE", "ROW", "DB", "SCHED"):
    params = None if name == "RAW" else (single if name in ("PE", "ROW") else double)
    cg = CoreGroup()
    out = dgemm(a, b, c, beta=1.0, variant=name, params=params, core_group=cg)
    err = float(np.max(np.abs(out - expected)))
    assert err < 1e-9, f"{name} diverged from the reference"
    estimate = estimator.estimate(name, 15360, 15360, 15360)
    table.add_row([
        name, f"{err:.1e}", f"{cg.dma.stats.bytes_total / 1e6:.1f}",
        estimate.gflops, PAPER[name],
    ])
print(table)
print("\nevery version computes the identical result; they differ only "
      "in data movement and instruction scheduling — exactly the "
      "paper's story.")
