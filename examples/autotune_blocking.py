#!/usr/bin/env python3
"""Automatic blocking-parameter tuning (the paper's stated future work).

Sec III-C derives the blocking parameters by hand; the conclusion
promises "automatic performance tuning".  This example enumerates every
hardware-feasible configuration (LDM budget, DMA granularity, register
tile coverage), scores each with the performance model at the paper's
saturated size, and shows where the hand-derived (16, 32, 96) lands.

Run:  python examples/autotune_blocking.py
"""

from repro.core.params import BlockingParams
from repro.tuning import autotune, enumerate_candidates
from repro.utils.format import Table

m = n = k = 9216
feasible = enumerate_candidates(double_buffered=True, p_n_step=8)
print(f"{len(feasible)} feasible double-buffered configurations "
      "(pM mult of 16, pN mult of 8, pK mult of 16, LDM < 8192 doubles)")

result = autotune(m, n, k, variant="SCHED", top=10, p_n_step=8)

table = Table(
    ["rank", "pM", "pN", "pK", "CG block", "LDM doubles", "Gflop/s"],
    title=f"top 10 for SCHED at {m}^3",
)
for rank, cand in enumerate(result.candidates):
    p = cand.params
    table.add_row([
        rank, p.p_m, p.p_n, p.p_k,
        f"{p.b_m}x{p.b_n}x{p.b_k}",
        p.ldm_doubles_per_cpe,
        cand.gflops,
    ])
print(table)

paper = BlockingParams.paper_double()
paper_rank = result.rank_of(paper)
best = result.best
print(f"\npaper's hand-derived (16, 32, 96) ranks #{paper_rank} — "
      f"within {100 * (1 - result.candidates[paper_rank].gflops / best.gflops):.1f}% "
      "of the tuner's best")
assert paper_rank <= 3, "the paper's parameters should be near-optimal"
