#!/usr/bin/env python3
"""Convolution as GEMM on the simulated core group.

The paper's introduction cites convolutional neural networks as a
major GEMM consumer.  This example lowers a small convolution layer to
a single DGEMM via im2col, runs it on the simulated CPE cluster, and
checks against a direct convolution.

Run:  python examples/cnn_convolution.py
"""

import numpy as np

from repro import BlockingParams, CoreGroup
from repro.apps import conv2d_gemm, conv2d_reference

batch, channels, height, width = 4, 3, 16, 16
filters, kh, kw = 8, 3, 3

rng = np.random.default_rng(11)
images = rng.standard_normal((batch, channels, height, width))
kernels = rng.standard_normal((filters, channels, kh, kw)) / (kh * kw)

gemm_m = filters
gemm_k = channels * kh * kw
gemm_n = batch * (height - kh + 1) * (width - kw + 1)
print(f"conv layer: {batch} images {channels}x{height}x{width}, "
      f"{filters} filters {kh}x{kw}")
print(f"lowered GEMM: ({gemm_m} x {gemm_k}) @ ({gemm_k} x {gemm_n}) "
      "(padded to the CG block factors)\n")

cg = CoreGroup()
out = conv2d_gemm(
    images, kernels, variant="SCHED",
    params=BlockingParams.small(double_buffered=True), core_group=cg,
)
ref = conv2d_reference(images, kernels)

err = np.max(np.abs(out - ref))
print(f"feature maps: {out.shape}, max |gemm - direct| = {err:.3e}")
assert np.allclose(out, ref, rtol=1e-10, atol=1e-10)

useful = 2 * gemm_m * gemm_k * gemm_n
print(f"useful flops: {useful / 1e6:.1f} M; device DMA traffic "
      f"{cg.dma.stats.bytes_total / 1e6:.1f} MB")
print("\nNOTE: im2col padding makes small layers DMA-heavy — the same "
      "amortization effect Figure 7 shows for small m.")
