#!/usr/bin/env python3
"""HPL-style blocked LU factorization on the simulated core group.

The paper motivates DGEMM through HPL, "the standard to rank
supercomputers in the TOP500 lists": HPL's flops are dominated by the
trailing-matrix update A22 -= L21 @ U12, which is exactly a DGEMM with
alpha = -1, beta = 1.  This example factors a diagonally dominant
system with partial pivoting, runs every trailing update through the
simulated CPE cluster, and reports the HPL-style scaled residual.

Run:  python examples/hpl_trailing_update.py
"""

import numpy as np

from repro import BlockingParams, CoreGroup
from repro.apps import blocked_lu, lu_residual, lu_solve

n = 256
panel = 64
rng = np.random.default_rng(7)
a = rng.standard_normal((n, n)) + n * np.eye(n)   # well conditioned
b = rng.standard_normal(n)

print(f"blocked LU of a {n} x {n} system, panel width {panel}")
print("panel factorization + pivoting on the MPE, trailing updates on "
      "the 64 CPEs\n")

cg = CoreGroup()
result = blocked_lu(
    a, panel=panel, variant="SCHED",
    params=BlockingParams.small(double_buffered=True), core_group=cg,
)

residual = lu_residual(a, result)
print(f"HPL scaled residual ||PA - LU|| / (||A|| n eps) = {residual:.3f} "
      "(HPL accepts < 16)")
assert residual < 16.0

x = lu_solve(result, b)
rel = np.linalg.norm(a @ x - b) / np.linalg.norm(b)
print(f"solve  ||Ax - b|| / ||b|| = {rel:.2e}")
assert rel < 1e-10

total_flops = 2 * n**3 / 3
print(f"\ntrailing updates executed {result.gemm_flops / 1e6:.1f} Mflops "
      f"on the CG = {100 * result.gemm_flops / total_flops:.0f}% of the "
      f"factorization's ~{total_flops / 1e6:.1f} Mflops")
print(f"device DMA traffic: {cg.dma.stats.bytes_total / 1e6:.1f} MB")
